//! Deterministic fork-join execution over disjoint per-net state.
//!
//! The deletion engine's dominant cost is champion re-keying: after a
//! deletion, every dirty net re-scans its deletable edges for the
//! minimum [`crate::select::EdgeKey`]. Each scan touches only its own
//! net's state (routing graph, hypothetical-wire cache, delay memo)
//! plus the shared [`crate::density::DensityMap`] / [`bgr_timing::Sta`]
//! immutably — embarrassingly parallel, but only worth parallelizing if
//! the result is *bit-identical* to the sequential run.
//!
//! [`scoped_map`] is the whole subsystem: a `std::thread::scope`-based
//! map over a mutable slice that
//!
//! * partitions the slice into **contiguous chunks in input order** and
//!   concatenates the per-chunk results back **in chunk order**, so
//!   `scoped_map(t, items, f)[i] == f(&mut items[i])` for every `i`
//!   regardless of `threads` — the caller sorts its work list (the
//!   engine uses ascending net id) and the merge order is then a pure
//!   function of the input;
//! * runs the **first chunk on the calling thread**, so small batches
//!   pay zero spawn cost beyond the `threads <= 1` early-out and large
//!   batches use the caller as one of the workers;
//! * spawns **scoped** threads (no `'static` bound, no channels, no
//!   shared queues — no new dependencies), joining them all before
//!   returning, so a worker panic propagates to the caller instead of
//!   being lost.
//!
//! Determinism argument: `f` receives `&mut T` for *disjoint* items and
//! whatever `Sync` environment it captures immutably. Which thread runs
//! which item affects neither the item's result nor any shared state,
//! and the concatenation order is fixed, so the output vector — and any
//! per-item side effect the caller later folds **in input order** — is
//! independent of the thread count. See DESIGN.md §10 for how the
//! engine builds byte-identical trace streams on top of this.

/// Maps `f` over `items` using up to `threads` OS threads, returning
/// the results in input order.
///
/// `threads <= 1`, or fewer than two items, degrades to a plain
/// sequential loop with no thread machinery at all. More threads than
/// items never spawns idle workers.
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn scoped_map<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n < 2 {
        return items.iter_mut().map(f).collect();
    }
    let chunk = n.div_ceil(threads.min(n));
    let fr = &f;
    let mut chunks = items.chunks_mut(chunk);
    let first = chunks.next().expect("n >= 2 yields at least one chunk");
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .map(|c| s.spawn(move || c.iter_mut().map(fr).collect::<Vec<R>>()))
            .collect();
        // The calling thread is worker zero; its chunk is first in the
        // output, the joined chunks follow in spawn (= input) order.
        let mut out: Vec<R> = Vec::with_capacity(n);
        out.extend(first.iter_mut().map(fr));
        for h in handles {
            match h.join() {
                Ok(chunk) => out.extend(chunk),
                // Re-raise the worker's own payload so the caller sees
                // the original message (net id, assertion text) rather
                // than a generic join failure.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let mut items: Vec<usize> = (0..103).collect();
        for threads in [1, 2, 3, 8, 200] {
            let out = scoped_map(threads, &mut items, |&mut i| i * 2);
            let want: Vec<usize> = (0..103).map(|i| i * 2).collect();
            assert_eq!(out, want, "threads={threads}");
        }
    }

    #[test]
    fn mutations_land_on_the_right_items() {
        let mut items: Vec<(usize, u64)> = (0..50).map(|i| (i, 0)).collect();
        scoped_map(4, &mut items, |item| {
            item.1 = item.0 as u64 + 1;
        });
        for (i, state) in items {
            assert_eq!(state, i as u64 + 1);
        }
    }

    #[test]
    fn matches_sequential_for_every_thread_count() {
        let mut base: Vec<u64> = (0..37).map(|i| i * 17 % 23).collect();
        let seq = scoped_map(1, &mut base.clone(), |&mut v| v.wrapping_mul(v) ^ 0x5bd1);
        for threads in 2..=10 {
            let par = scoped_map(threads, &mut base, |&mut v| v.wrapping_mul(v) ^ 0x5bd1);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_are_fine() {
        let mut empty: Vec<u32> = vec![];
        assert!(scoped_map(8, &mut empty, |&mut v| v).is_empty());
        let mut one = vec![7u32];
        assert_eq!(scoped_map(8, &mut one, |&mut v| v + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "boom in item 15")]
    fn worker_panics_propagate() {
        let mut items: Vec<usize> = (0..16).collect();
        // Panic on an item that lands in a spawned (non-first) chunk; the
        // worker's own payload must reach the caller intact.
        scoped_map(4, &mut items, |&mut i| {
            assert_ne!(i, 15, "boom in item {i}");
            i
        });
    }

    #[test]
    fn calling_thread_panics_propagate_too() {
        let caught = std::panic::catch_unwind(|| {
            let mut items: Vec<usize> = (0..16).collect();
            // Item 0 runs on the calling thread (worker zero).
            scoped_map(4, &mut items, |&mut i| {
                assert_ne!(i, 0, "boom in first chunk");
                i
            });
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom in first chunk"), "{msg}");
    }
}
