//! The three rip-up-and-reroute improvement phases (§3.5).

use std::collections::HashSet;
use std::time::Instant;

use bgr_netlist::NetId;

use crate::config::CriteriaOrder;
use crate::engine::Engine;
use crate::probe::{Counter, Phase, Probe, Scope, TraceEvent};

const EPS: f64 = 1e-6;

/// Work ceilings one improvement phase runs under.
///
/// `max_reroutes` is deterministic (a pure step count — exhaustion emits
/// [`TraceEvent::BudgetExhausted`] at the same stream position in every
/// run); `deadline` is wall-clock and therefore reported only through
/// [`Counter::DeadlineStop`] on the diagnostics side (DESIGN.md §11).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseLimits {
    /// Ceiling on reroutes in this phase (`None` = unlimited).
    pub max_reroutes: Option<u64>,
    /// Absolute wall-clock deadline (`None` = none).
    pub deadline: Option<Instant>,
}

impl PhaseLimits {
    /// No limits (the pre-budget behaviour).
    pub fn none() -> Self {
        Self::default()
    }
}

/// What one improvement phase did and why it stopped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseOutcome {
    /// Nets ripped up and rerouted.
    pub reroutes: usize,
    /// Passes actually run (≤ the configured pass count).
    pub passes: usize,
    /// The deterministic reroute budget ran out mid-phase.
    pub budget_exhausted: bool,
    /// The wall-clock deadline stopped the phase.
    pub deadline_fired: bool,
}

/// Whether the phase may spend one more reroute; on the first refusal,
/// reports the reason (deterministic event for the step budget, the
/// diagnostics counter for the deadline) and latches it in `out`.
fn step_allowed<P: Probe>(
    engine: &mut Engine<P>,
    phase: Phase,
    limits: &PhaseLimits,
    out: &mut PhaseOutcome,
) -> bool {
    if out.budget_exhausted || out.deadline_fired {
        return false;
    }
    if limits
        .max_reroutes
        .is_some_and(|b| out.reroutes as u64 >= b)
    {
        engine.probe_mut().event(TraceEvent::BudgetExhausted {
            phase,
            steps: out.reroutes as u64,
        });
        out.budget_exhausted = true;
        return false;
    }
    if limits.deadline.is_some_and(|d| Instant::now() >= d) {
        engine.probe_mut().count(Counter::DeadlineStop, 1);
        out.deadline_fired = true;
        return false;
    }
    true
}

/// Timing score of the current state: `(total violation, total arrival)`
/// over all constraints — smaller is better. Summing (rather than taking
/// the worst) prevents a reroute from trading one constraint's slack for
/// another's violation.
fn timing_score<P: Probe>(engine: &Engine<P>) -> (f64, f64) {
    let sta = engine.sta();
    let mut violation = 0.0;
    let mut arrival = 0.0;
    for c in 0..sta.num_constraints() {
        violation += (-sta.margin_ps(c)).max(0.0);
        arrival += sta.arrival_ps(c);
    }
    (violation, arrival)
}

/// Reroutes one net, reverting if the timing score regresses (the
/// improvement phases must never make things worse).
fn reroute_guarded<P: Probe>(engine: &mut Engine<P>, net: NetId, order: CriteriaOrder) {
    if P::PROFILING {
        engine.probe_mut().scope_enter(Scope::Reroute);
    }
    let snap = engine.snapshot(net);
    let before = timing_score(engine);
    engine.reroute_net(net, order);
    let after = timing_score(engine);
    let worse = after.0 > before.0 + EPS || (after.0 > before.0 - EPS && after.1 > before.1 + EPS);
    if worse {
        engine.restore(&snap);
        engine
            .probe_mut()
            .event(TraceEvent::RerouteRejected { net });
    } else {
        engine
            .probe_mut()
            .event(TraceEvent::RerouteAccepted { net });
    }
    if P::PROFILING {
        engine.probe_mut().scope_exit(Scope::Reroute);
    }
}

/// Nets on the critical paths of the given constraints, in ascending
/// margin order, deduplicated.
fn critical_nets_by_margin<P: Probe>(engine: &Engine<P>, only_violated: bool) -> Vec<NetId> {
    let sta = engine.sta();
    let mut cids: Vec<usize> = (0..sta.num_constraints())
        .filter(|&c| !only_violated || sta.margin_ps(c) < 0.0)
        .collect();
    cids.sort_by(|&a, &b| sta.margin_ps(a).total_cmp(&sta.margin_ps(b)));
    let mut seen = HashSet::new();
    let mut nets = Vec::new();
    for cid in cids {
        for net in sta.critical_nets(cid) {
            if seen.insert(net) {
                nets.push(net);
            }
        }
    }
    nets
}

/// Constraint-violation recovery (§3.5 phase 1): reroutes the nets on the
/// critical paths of violated constraints until the violations are gone,
/// progress stalls, `passes` is exhausted, or `limits` stop the phase.
pub fn recover_violate<P: Probe>(
    engine: &mut Engine<P>,
    passes: usize,
    order: CriteriaOrder,
    limits: &PhaseLimits,
) -> PhaseOutcome {
    let mut out = PhaseOutcome::default();
    for _ in 0..passes {
        if engine.sta().worst_margin_ps() >= 0.0 {
            break;
        }
        out.passes += 1;
        let before = engine.sta().worst_margin_ps();
        for net in critical_nets_by_margin(engine, true) {
            if !step_allowed(engine, Phase::RecoverViolate, limits, &mut out) {
                return out;
            }
            reroute_guarded(engine, net, order);
            out.reroutes += 1;
        }
        if engine.sta().worst_margin_ps() <= before + EPS {
            break;
        }
    }
    out
}

/// Delay improvement (§3.5 phase 2): reroutes critical-path nets of *all*
/// constraints, tightest first, until no margin progress or `limits`
/// stop the phase.
pub fn improve_delay<P: Probe>(
    engine: &mut Engine<P>,
    passes: usize,
    order: CriteriaOrder,
    limits: &PhaseLimits,
) -> PhaseOutcome {
    let mut out = PhaseOutcome::default();
    for _ in 0..passes {
        if engine.sta().num_constraints() == 0 {
            break;
        }
        out.passes += 1;
        let worst_before = engine.sta().worst_margin_ps();
        let arrival_before = engine.sta().max_arrival_ps();
        for net in critical_nets_by_margin(engine, false) {
            if !step_allowed(engine, Phase::ImproveDelay, limits, &mut out) {
                return out;
            }
            reroute_guarded(engine, net, order);
            out.reroutes += 1;
        }
        let improved = engine.sta().worst_margin_ps() > worst_before + EPS
            || engine.sta().max_arrival_ps() < arrival_before - EPS;
        if !improved {
            break;
        }
    }
    out
}

/// Area improvement (§3.5 phase 3): reroutes nets running through the
/// most congested columns first, with the reordered (area) criteria.
pub fn improve_area<P: Probe>(
    engine: &mut Engine<P>,
    passes: usize,
    limits: &PhaseLimits,
) -> PhaseOutcome {
    let mut out = PhaseOutcome::default();
    for _ in 0..passes {
        out.passes += 1;
        let tracks_before: i32 = engine.density().channel_maxima().iter().sum();
        let hottest = engine
            .density()
            .channel_maxima()
            .into_iter()
            .max()
            .unwrap_or(0);
        if hottest == 0 {
            break;
        }
        // Score nets by the peak density their tree runs through.
        let all_spans: Vec<Vec<(bgr_layout::ChannelId, i32, i32)>> = engine
            .graphs()
            .iter()
            .map(|g| {
                g.alive_edges()
                    .filter_map(|e| {
                        let edge = &g.edges()[e as usize];
                        match edge.kind {
                            crate::graph::REdgeKind::Trunk { channel } => {
                                Some((channel, edge.x1, edge.x2))
                            }
                            _ => None,
                        }
                    })
                    .collect()
            })
            .collect();
        let mut scored: Vec<(i32, NetId)> = Vec::new();
        for (i, spans) in all_spans.into_iter().enumerate() {
            let net = NetId::new(i);
            let mut score = 0;
            for (c, x1, x2) in spans {
                score = score.max(engine.density().edge_density(c, x1, x2).d_max);
            }
            if score >= hottest - 1 && score > 0 {
                scored.push((score, net));
            }
        }
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, net) in scored {
            if !step_allowed(engine, Phase::ImproveArea, limits, &mut out) {
                return out;
            }
            let snap = engine.snapshot(net);
            let tracks_b: i32 = engine.density().channel_maxima().iter().sum();
            let timing_b = timing_score(engine);
            engine.reroute_net(net, CriteriaOrder::AreaFirst);
            let tracks_a: i32 = engine.density().channel_maxima().iter().sum();
            let timing_a = timing_score(engine);
            if tracks_a > tracks_b || timing_a.0 > timing_b.0 + EPS {
                engine.restore(&snap);
                engine
                    .probe_mut()
                    .event(TraceEvent::RerouteRejected { net });
            } else {
                engine
                    .probe_mut()
                    .event(TraceEvent::RerouteAccepted { net });
            }
            out.reroutes += 1;
        }
        let tracks_after: i32 = engine.density().channel_maxima().iter().sum();
        if tracks_after >= tracks_before {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoutingGraph;
    use bgr_layout::{Geometry, PlacementBuilder};
    use bgr_netlist::{CellLibrary, CircuitBuilder};
    use bgr_timing::{DelayModel, PathConstraint, Sta, WireParams};

    /// A chain with one cross-channel net under a tight constraint.
    fn engine_with_constraint(limit: f64) -> Engine {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let y = cb.add_output_pad("y");
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", inv);
        cb.add_net("n0", cb.pad_term(a), [cb.cell_term(u1, "A").unwrap()])
            .unwrap();
        cb.add_net(
            "n1",
            cb.cell_term(u1, "Y").unwrap(),
            [cb.cell_term(u2, "A").unwrap()],
        )
        .unwrap();
        cb.add_net("n2", cb.cell_term(u2, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        let cons = vec![PathConstraint::new(
            "p",
            cb.pad_term(a),
            cb.pad_term(y),
            limit,
        )];
        let circuit = cb.finish().unwrap();
        let mut pb = PlacementBuilder::new(Geometry::default(), 1);
        pb.append_with_width(0, bgr_netlist::CellId::new(0), 3);
        pb.append_with_width(0, bgr_netlist::CellId::new(1), 3);
        pb.place_pad_bottom(a, 0);
        pb.place_pad_top(y, 5);
        let placement = pb.finish(&circuit).unwrap();
        let graphs: Vec<RoutingGraph> = circuit
            .net_ids()
            .map(|n| RoutingGraph::build(&circuit, &placement, n, &[], 30.0))
            .collect();
        let sta = Sta::new(
            &circuit,
            cons,
            DelayModel::Capacitance,
            WireParams::default(),
        )
        .unwrap();
        let partner = vec![None; circuit.nets().len()];
        let width = placement.width_pitches() as usize;
        Engine::new(graphs, sta, partner, placement.num_channels(), width)
    }

    #[test]
    fn phases_run_and_preserve_trees() {
        let mut engine = engine_with_constraint(500.0);
        engine.run_deletion(None, CriteriaOrder::DelayFirst);
        assert!(engine.all_trees());
        let lim = PhaseLimits::none();
        recover_violate(&mut engine, 3, CriteriaOrder::DelayFirst, &lim);
        improve_delay(&mut engine, 2, CriteriaOrder::DelayFirst, &lim);
        improve_area(&mut engine, 1, &lim);
        assert!(engine.all_trees());
    }

    #[test]
    fn recover_is_noop_without_violation() {
        let mut engine = engine_with_constraint(10_000.0);
        engine.run_deletion(None, CriteriaOrder::DelayFirst);
        let out = recover_violate(
            &mut engine,
            3,
            CriteriaOrder::DelayFirst,
            &PhaseLimits::none(),
        );
        assert_eq!(out.reroutes, 0);
        assert_eq!(out.passes, 0);
        assert!(!out.budget_exhausted && !out.deadline_fired);
    }

    #[test]
    fn improve_delay_runs_on_constrained_design() {
        let mut engine = engine_with_constraint(500.0);
        engine.run_deletion(None, CriteriaOrder::DelayFirst);
        let arrival_before = engine.sta().max_arrival_ps();
        improve_delay(
            &mut engine,
            2,
            CriteriaOrder::DelayFirst,
            &PhaseLimits::none(),
        );
        assert!(engine.sta().max_arrival_ps() <= arrival_before + 1e-6);
    }

    #[test]
    fn zero_reroute_budget_stops_recovery_before_any_work() {
        // An infeasible limit forces violated constraints, so recovery
        // *wants* to reroute; the zero budget must stop it cold and
        // leave the trees intact.
        let mut engine = engine_with_constraint(1.0);
        engine.run_deletion(None, CriteriaOrder::DelayFirst);
        assert!(engine.sta().worst_margin_ps() < 0.0);
        let lim = PhaseLimits {
            max_reroutes: Some(0),
            deadline: None,
        };
        let out = recover_violate(&mut engine, 3, CriteriaOrder::DelayFirst, &lim);
        assert_eq!(out.reroutes, 0);
        assert!(out.budget_exhausted);
        assert!(!out.deadline_fired);
        assert!(engine.all_trees());
    }

    #[test]
    fn expired_deadline_stops_phase_via_diagnostics_only() {
        let mut engine = engine_with_constraint(1.0);
        engine.run_deletion(None, CriteriaOrder::DelayFirst);
        let lim = PhaseLimits {
            max_reroutes: None,
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
        };
        let out = recover_violate(&mut engine, 3, CriteriaOrder::DelayFirst, &lim);
        assert_eq!(out.reroutes, 0);
        assert!(out.deadline_fired);
        assert!(!out.budget_exhausted);
        assert!(engine.all_trees());
    }
}
