//! The three rip-up-and-reroute improvement phases (§3.5).

use std::collections::HashSet;

use bgr_netlist::NetId;

use crate::config::CriteriaOrder;
use crate::engine::Engine;
use crate::probe::{Probe, TraceEvent};

const EPS: f64 = 1e-6;

/// Timing score of the current state: `(total violation, total arrival)`
/// over all constraints — smaller is better. Summing (rather than taking
/// the worst) prevents a reroute from trading one constraint's slack for
/// another's violation.
fn timing_score<P: Probe>(engine: &Engine<P>) -> (f64, f64) {
    let sta = engine.sta();
    let mut violation = 0.0;
    let mut arrival = 0.0;
    for c in 0..sta.num_constraints() {
        violation += (-sta.margin_ps(c)).max(0.0);
        arrival += sta.arrival_ps(c);
    }
    (violation, arrival)
}

/// Reroutes one net, reverting if the timing score regresses (the
/// improvement phases must never make things worse).
fn reroute_guarded<P: Probe>(engine: &mut Engine<P>, net: NetId, order: CriteriaOrder) {
    let snap = engine.snapshot(net);
    let before = timing_score(engine);
    engine.reroute_net(net, order);
    let after = timing_score(engine);
    let worse = after.0 > before.0 + EPS || (after.0 > before.0 - EPS && after.1 > before.1 + EPS);
    if worse {
        engine.restore(&snap);
        engine
            .probe_mut()
            .event(TraceEvent::RerouteRejected { net });
    } else {
        engine
            .probe_mut()
            .event(TraceEvent::RerouteAccepted { net });
    }
}

/// Nets on the critical paths of the given constraints, in ascending
/// margin order, deduplicated.
fn critical_nets_by_margin<P: Probe>(engine: &Engine<P>, only_violated: bool) -> Vec<NetId> {
    let sta = engine.sta();
    let mut cids: Vec<usize> = (0..sta.num_constraints())
        .filter(|&c| !only_violated || sta.margin_ps(c) < 0.0)
        .collect();
    cids.sort_by(|&a, &b| sta.margin_ps(a).total_cmp(&sta.margin_ps(b)));
    let mut seen = HashSet::new();
    let mut nets = Vec::new();
    for cid in cids {
        for net in sta.critical_nets(cid) {
            if seen.insert(net) {
                nets.push(net);
            }
        }
    }
    nets
}

/// Constraint-violation recovery (§3.5 phase 1): reroutes the nets on the
/// critical paths of violated constraints until the violations are gone,
/// progress stalls, or `passes` is exhausted. Returns reroute count.
pub fn recover_violate<P: Probe>(
    engine: &mut Engine<P>,
    passes: usize,
    order: CriteriaOrder,
) -> usize {
    let mut reroutes = 0;
    for _ in 0..passes {
        if engine.sta().worst_margin_ps() >= 0.0 {
            break;
        }
        let before = engine.sta().worst_margin_ps();
        for net in critical_nets_by_margin(engine, true) {
            reroute_guarded(engine, net, order);
            reroutes += 1;
        }
        if engine.sta().worst_margin_ps() <= before + EPS {
            break;
        }
    }
    reroutes
}

/// Delay improvement (§3.5 phase 2): reroutes critical-path nets of *all*
/// constraints, tightest first, until no margin progress. Returns reroute
/// count.
pub fn improve_delay<P: Probe>(
    engine: &mut Engine<P>,
    passes: usize,
    order: CriteriaOrder,
) -> usize {
    let mut reroutes = 0;
    for _ in 0..passes {
        if engine.sta().num_constraints() == 0 {
            break;
        }
        let worst_before = engine.sta().worst_margin_ps();
        let arrival_before = engine.sta().max_arrival_ps();
        for net in critical_nets_by_margin(engine, false) {
            reroute_guarded(engine, net, order);
            reroutes += 1;
        }
        let improved = engine.sta().worst_margin_ps() > worst_before + EPS
            || engine.sta().max_arrival_ps() < arrival_before - EPS;
        if !improved {
            break;
        }
    }
    reroutes
}

/// Area improvement (§3.5 phase 3): reroutes nets running through the
/// most congested columns first, with the reordered (area) criteria.
/// Returns reroute count.
pub fn improve_area<P: Probe>(engine: &mut Engine<P>, passes: usize) -> usize {
    let mut reroutes = 0;
    for _ in 0..passes {
        let tracks_before: i32 = engine.density().channel_maxima().iter().sum();
        let hottest = engine
            .density()
            .channel_maxima()
            .into_iter()
            .max()
            .unwrap_or(0);
        if hottest == 0 {
            break;
        }
        // Score nets by the peak density their tree runs through.
        let all_spans: Vec<Vec<(bgr_layout::ChannelId, i32, i32)>> = engine
            .graphs()
            .iter()
            .map(|g| {
                g.alive_edges()
                    .filter_map(|e| {
                        let edge = &g.edges()[e as usize];
                        match edge.kind {
                            crate::graph::REdgeKind::Trunk { channel } => {
                                Some((channel, edge.x1, edge.x2))
                            }
                            _ => None,
                        }
                    })
                    .collect()
            })
            .collect();
        let mut scored: Vec<(i32, NetId)> = Vec::new();
        for (i, spans) in all_spans.into_iter().enumerate() {
            let net = NetId::new(i);
            let mut score = 0;
            for (c, x1, x2) in spans {
                score = score.max(engine.density().edge_density(c, x1, x2).d_max);
            }
            if score >= hottest - 1 && score > 0 {
                scored.push((score, net));
            }
        }
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, net) in scored {
            let snap = engine.snapshot(net);
            let tracks_b: i32 = engine.density().channel_maxima().iter().sum();
            let timing_b = timing_score(engine);
            engine.reroute_net(net, CriteriaOrder::AreaFirst);
            let tracks_a: i32 = engine.density().channel_maxima().iter().sum();
            let timing_a = timing_score(engine);
            if tracks_a > tracks_b || timing_a.0 > timing_b.0 + EPS {
                engine.restore(&snap);
                engine
                    .probe_mut()
                    .event(TraceEvent::RerouteRejected { net });
            } else {
                engine
                    .probe_mut()
                    .event(TraceEvent::RerouteAccepted { net });
            }
            reroutes += 1;
        }
        let tracks_after: i32 = engine.density().channel_maxima().iter().sum();
        if tracks_after >= tracks_before {
            break;
        }
    }
    reroutes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoutingGraph;
    use bgr_layout::{Geometry, PlacementBuilder};
    use bgr_netlist::{CellLibrary, CircuitBuilder};
    use bgr_timing::{DelayModel, PathConstraint, Sta, WireParams};

    /// A chain with one cross-channel net under a tight constraint.
    fn engine_with_constraint(limit: f64) -> Engine {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let y = cb.add_output_pad("y");
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", inv);
        cb.add_net("n0", cb.pad_term(a), [cb.cell_term(u1, "A").unwrap()])
            .unwrap();
        cb.add_net(
            "n1",
            cb.cell_term(u1, "Y").unwrap(),
            [cb.cell_term(u2, "A").unwrap()],
        )
        .unwrap();
        cb.add_net("n2", cb.cell_term(u2, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        let cons = vec![PathConstraint::new(
            "p",
            cb.pad_term(a),
            cb.pad_term(y),
            limit,
        )];
        let circuit = cb.finish().unwrap();
        let mut pb = PlacementBuilder::new(Geometry::default(), 1);
        pb.append_with_width(0, bgr_netlist::CellId::new(0), 3);
        pb.append_with_width(0, bgr_netlist::CellId::new(1), 3);
        pb.place_pad_bottom(a, 0);
        pb.place_pad_top(y, 5);
        let placement = pb.finish(&circuit).unwrap();
        let graphs: Vec<RoutingGraph> = circuit
            .net_ids()
            .map(|n| RoutingGraph::build(&circuit, &placement, n, &[], 30.0))
            .collect();
        let sta = Sta::new(
            &circuit,
            cons,
            DelayModel::Capacitance,
            WireParams::default(),
        )
        .unwrap();
        let partner = vec![None; circuit.nets().len()];
        let width = placement.width_pitches() as usize;
        Engine::new(graphs, sta, partner, placement.num_channels(), width)
    }

    #[test]
    fn phases_run_and_preserve_trees() {
        let mut engine = engine_with_constraint(500.0);
        engine.run_deletion(None, CriteriaOrder::DelayFirst);
        assert!(engine.all_trees());
        recover_violate(&mut engine, 3, CriteriaOrder::DelayFirst);
        improve_delay(&mut engine, 2, CriteriaOrder::DelayFirst);
        improve_area(&mut engine, 1);
        assert!(engine.all_trees());
    }

    #[test]
    fn recover_is_noop_without_violation() {
        let mut engine = engine_with_constraint(10_000.0);
        engine.run_deletion(None, CriteriaOrder::DelayFirst);
        let r = recover_violate(&mut engine, 3, CriteriaOrder::DelayFirst);
        assert_eq!(r, 0);
    }

    #[test]
    fn improve_delay_runs_on_constrained_design() {
        let mut engine = engine_with_constraint(500.0);
        engine.run_deletion(None, CriteriaOrder::DelayFirst);
        let arrival_before = engine.sta().max_arrival_ps();
        improve_delay(&mut engine, 2, CriteriaOrder::DelayFirst);
        assert!(engine.sta().max_arrival_ps() <= arrival_before + 1e-6);
    }
}
