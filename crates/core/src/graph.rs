//! The per-net routing graph `G_r(n)` (§3.1, Fig. 3).
//!
//! Vertices correspond to circuit terminals, to physical tap positions in
//! channels, and to feedthrough points; edges are channel **trunks**
//! (horizontal wiring between consecutive tap x positions), **branches**
//! (vertical pin taps — the paper's zero-weight terminal-position
//! correspondence), and **feedthrough halves** (vertical row crossings).
//!
//! The interconnection wiring of the net must end up a tree over the
//! terminal vertices. Edges whose deletion disconnects the graph are
//! *bridges*; the router only ever deletes non-bridges, so connectivity is
//! invariant. Dangling non-terminal chains left behind by a deletion are
//! pruned immediately (they no longer represent candidate wiring).

use bgr_layout::{ChannelId, Placement};
use bgr_netlist::{Circuit, NetId, TermId};

/// What a routing-graph vertex stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RVertKind {
    /// A circuit terminal of the net (must stay connected).
    Terminal(TermId),
    /// A candidate tap position of a terminal in a channel.
    TermTap {
        /// The terminal.
        term: TermId,
        /// Channel of the tap.
        channel: ChannelId,
    },
    /// An assigned feedthrough point in a cell row.
    Feed {
        /// Row being crossed.
        row: u32,
    },
    /// The feedthrough's tap in one of its two adjacent channels.
    FeedTap {
        /// Row being crossed.
        row: u32,
        /// Channel of the tap.
        channel: ChannelId,
    },
}

/// A routing-graph vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RVert {
    /// Vertex kind.
    pub kind: RVertKind,
    /// Horizontal position in pitches.
    pub x: i32,
}

/// Edge kind of `G_r(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum REdgeKind {
    /// Horizontal channel wiring over `[x1, x2)`; contributes to channel
    /// density.
    Trunk {
        /// Channel the trunk runs in.
        channel: ChannelId,
    },
    /// Vertical pin tap (terminal ↔ tap position); no density interval.
    Branch {
        /// Channel the branch drops into.
        channel: ChannelId,
    },
    /// Half of a row crossing (feed point ↔ channel tap).
    FeedHalf {
        /// Row being crossed.
        row: u32,
    },
}

impl REdgeKind {
    /// Whether this is a trunk edge.
    #[inline]
    pub fn is_trunk(&self) -> bool {
        matches!(self, Self::Trunk { .. })
    }

    /// The channel of a trunk or branch edge.
    #[inline]
    pub fn channel(&self) -> Option<ChannelId> {
        match self {
            Self::Trunk { channel } | Self::Branch { channel } => Some(*channel),
            Self::FeedHalf { .. } => None,
        }
    }
}

/// A routing-graph edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct REdge {
    /// One endpoint (vertex index).
    pub a: u32,
    /// Other endpoint (vertex index).
    pub b: u32,
    /// Kind.
    pub kind: REdgeKind,
    /// Left end of the x interval (pitches).
    pub x1: i32,
    /// Right end of the x interval (pitches); `x1 == x2` for vertical
    /// edges.
    pub x2: i32,
    /// Physical length in µm charged to delay estimation.
    pub len_um: f64,
}

/// The routing graph of one net, with alive/bridge bookkeeping.
#[derive(Debug, Clone)]
pub struct RoutingGraph {
    net: NetId,
    width: u32,
    verts: Vec<RVert>,
    edges: Vec<REdge>,
    adj: Vec<Vec<(u32, u32)>>,
    alive: Vec<bool>,
    bridge: Vec<bool>,
    terminal_verts: Vec<u32>,
    driver_vert: u32,
    alive_count: usize,
    /// Invalidation stamp: bumped by every call that can change the alive
    /// set or bridge flags. Equal stamps guarantee an identical graph
    /// state, so derived caches (tentative lengths, hypothetical wires,
    /// selection keys) keyed on it can never go stale.
    generation: u64,
}

impl RoutingGraph {
    /// Builds `G_r(n)` for `net` given the feedthrough points assigned to
    /// it (`feeds` = `(row, x)` pairs, one per crossed row).
    ///
    /// `branch_length_um` is the nominal vertical length charged to pin
    /// taps; row crossings are charged the full row height.
    pub fn build(
        circuit: &Circuit,
        placement: &Placement,
        net: NetId,
        feeds: &[(usize, i32)],
        branch_length_um: f64,
    ) -> Self {
        let lens = vec![branch_length_um; placement.num_channels()];
        Self::build_with_channel_branches(circuit, placement, net, feeds, &lens)
    }

    /// Like [`RoutingGraph::build`], but with a per-channel branch length
    /// (the router auto-calibrates these to half the *expected* channel
    /// height, so tentative-tree delay estimates track the lengths the
    /// channel router will later realize).
    ///
    /// # Panics
    ///
    /// Panics if `branch_len_um.len() != placement.num_channels()`.
    pub fn build_with_channel_branches(
        circuit: &Circuit,
        placement: &Placement,
        net: NetId,
        feeds: &[(usize, i32)],
        branch_len_um: &[f64],
    ) -> Self {
        assert_eq!(
            branch_len_um.len(),
            placement.num_channels(),
            "one branch length per channel"
        );
        let num_rows = placement.num_rows();
        let pitch = placement.geometry().pitch_um;
        let row_height = placement.geometry().row_height_um;
        let n = circuit.net(net);

        let mut verts: Vec<RVert> = Vec::new();
        let mut edges: Vec<REdge> = Vec::new();
        let mut terminal_verts = Vec::new();
        let mut driver_vert = 0u32;
        // Taps per channel for trunk linking: (channel, x, vert).
        let mut taps: Vec<(ChannelId, i32, u32)> = Vec::new();

        let add_vert = |verts: &mut Vec<RVert>, kind, x| -> u32 {
            verts.push(RVert { kind, x });
            (verts.len() - 1) as u32
        };

        for term in n.terms() {
            let pos = placement.term_pos(circuit, term);
            let tv = add_vert(&mut verts, RVertKind::Terminal(term), pos.x);
            terminal_verts.push(tv);
            if term == n.driver() {
                driver_vert = tv;
            }
            for channel in pos.channels(num_rows) {
                let tap = add_vert(&mut verts, RVertKind::TermTap { term, channel }, pos.x);
                edges.push(REdge {
                    a: tv,
                    b: tap,
                    kind: REdgeKind::Branch { channel },
                    x1: pos.x,
                    x2: pos.x,
                    len_um: branch_len_um[channel.index()],
                });
                taps.push((channel, pos.x, tap));
            }
        }
        for &(row, x) in feeds {
            let fv = add_vert(&mut verts, RVertKind::Feed { row: row as u32 }, x);
            for channel in [ChannelId::new(row), ChannelId::new(row + 1)] {
                let tap = add_vert(
                    &mut verts,
                    RVertKind::FeedTap {
                        row: row as u32,
                        channel,
                    },
                    x,
                );
                edges.push(REdge {
                    a: fv,
                    b: tap,
                    kind: REdgeKind::FeedHalf { row: row as u32 },
                    x1: x,
                    x2: x,
                    len_um: row_height / 2.0,
                });
                taps.push((channel, x, tap));
            }
        }
        // Trunk edges: link consecutive taps within each channel.
        taps.sort_by_key(|&(c, x, v)| (c, x, v));
        for pair in taps.windows(2) {
            let (c1, x1, v1) = pair[0];
            let (c2, x2, v2) = pair[1];
            if c1 == c2 {
                edges.push(REdge {
                    a: v1,
                    b: v2,
                    kind: REdgeKind::Trunk { channel: c1 },
                    x1,
                    x2,
                    len_um: (x2 - x1) as f64 * pitch,
                });
            }
        }

        let mut adj = vec![Vec::new(); verts.len()];
        for (i, e) in edges.iter().enumerate() {
            adj[e.a as usize].push((e.b, i as u32));
            adj[e.b as usize].push((e.a, i as u32));
        }
        let alive_count = edges.len();
        let mut graph = Self {
            net,
            width: n.width_pitches(),
            alive: vec![true; edges.len()],
            bridge: vec![false; edges.len()],
            verts,
            edges,
            adj,
            terminal_verts,
            driver_vert,
            alive_count,
            generation: 0,
        };
        graph.recompute_bridges();
        graph
    }

    /// The net this graph routes.
    pub fn net(&self) -> NetId {
        self.net
    }

    /// Wire width in pitches (density weight of trunk edges).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// All vertices.
    pub fn verts(&self) -> &[RVert] {
        &self.verts
    }

    /// All edges (including deleted ones; check [`RoutingGraph::is_alive`]).
    pub fn edges(&self) -> &[REdge] {
        &self.edges
    }

    /// Adjacency `(neighbor vertex, edge index)` of a vertex, including
    /// dead edges.
    pub fn adj(&self, v: u32) -> &[(u32, u32)] {
        &self.adj[v as usize]
    }

    /// Whether edge `e` is alive.
    #[inline]
    pub fn is_alive(&self, e: u32) -> bool {
        self.alive[e as usize]
    }

    /// Whether edge `e` is currently a bridge (only meaningful if alive).
    #[inline]
    pub fn is_bridge(&self, e: u32) -> bool {
        self.bridge[e as usize]
    }

    /// Number of alive edges.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Invalidation stamp: bumped by [`RoutingGraph::delete_edge`],
    /// [`RoutingGraph::restore_all`], [`RoutingGraph::set_alive_mask`],
    /// [`RoutingGraph::prune_dangling`] and
    /// [`RoutingGraph::recompute_bridges`]. Caches derived from the alive
    /// subgraph or its bridge flags stay valid exactly while this value is
    /// unchanged.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Vertex indices of the net's terminals.
    pub fn terminal_verts(&self) -> &[u32] {
        &self.terminal_verts
    }

    /// Vertex index of the driving terminal.
    pub fn driver_vert(&self) -> u32 {
        self.driver_vert
    }

    /// Iterates over alive edge indices.
    pub fn alive_edges(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.edges.len() as u32).filter(|&e| self.alive[e as usize])
    }

    /// Iterates over alive non-bridge edge indices (the deletable set
    /// `N_b`).
    pub fn non_bridge_edges(&self) -> impl Iterator<Item = u32> + '_ {
        self.alive_edges().filter(|&e| !self.bridge[e as usize])
    }

    /// Whether any deletable edge remains.
    pub fn has_non_bridge(&self) -> bool {
        self.non_bridge_edges().next().is_some()
    }

    /// Alive degree of a vertex.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize]
            .iter()
            .filter(|&&(_, e)| self.alive[e as usize])
            .count()
    }

    /// Deletes a single edge (marks dead). Callers are responsible for
    /// only deleting non-bridges and for re-running
    /// [`RoutingGraph::prune_dangling`] / [`RoutingGraph::recompute_bridges`].
    ///
    /// # Panics
    ///
    /// Panics if the edge is already dead.
    pub fn delete_edge(&mut self, e: u32) {
        assert!(self.alive[e as usize], "edge {e} deleted twice");
        self.alive[e as usize] = false;
        self.alive_count -= 1;
        self.generation += 1;
    }

    /// Restores every edge to alive (rip-up for rerouting) and recomputes
    /// bridges.
    pub fn restore_all(&mut self) {
        self.alive.iter_mut().for_each(|a| *a = true);
        self.alive_count = self.edges.len();
        self.generation += 1;
        self.recompute_bridges();
    }

    /// Snapshot of the alive mask (for revertible rerouting).
    pub fn alive_mask(&self) -> Vec<bool> {
        self.alive.clone()
    }

    /// Restores a previously captured alive mask and recomputes bridges.
    ///
    /// # Panics
    ///
    /// Panics if the mask length does not match the edge count.
    pub fn set_alive_mask(&mut self, mask: &[bool]) {
        assert_eq!(mask.len(), self.edges.len(), "mask length mismatch");
        self.alive.copy_from_slice(mask);
        self.alive_count = mask.iter().filter(|&&a| a).count();
        self.generation += 1;
        self.recompute_bridges();
    }

    /// Prunes dangling chains: repeatedly removes the single alive edge of
    /// any degree-1 non-terminal vertex. Returns the pruned edge indices.
    pub fn prune_dangling(&mut self) -> Vec<u32> {
        let mut pruned = Vec::new();
        let mut queue: Vec<u32> = (0..self.verts.len() as u32)
            .filter(|&v| {
                !matches!(self.verts[v as usize].kind, RVertKind::Terminal(_))
                    && self.degree(v) == 1
            })
            .collect();
        while let Some(v) = queue.pop() {
            if matches!(self.verts[v as usize].kind, RVertKind::Terminal(_)) {
                continue;
            }
            if self.degree(v) != 1 {
                continue;
            }
            let &(w, e) = self.adj[v as usize]
                .iter()
                .find(|&&(_, e)| self.alive[e as usize])
                .expect("§3.2 prune invariant: a degree-1 vertex has exactly one alive edge");
            self.alive[e as usize] = false;
            self.alive_count -= 1;
            pruned.push(e);
            if self.degree(w) == 1 {
                queue.push(w);
            }
        }
        if !pruned.is_empty() {
            self.generation += 1;
        }
        pruned
    }

    /// Recomputes bridge flags over the alive subgraph (iterative DFS
    /// low-link; parallel edges handled via edge ids).
    pub fn recompute_bridges(&mut self) {
        self.generation += 1;
        let nv = self.verts.len();
        self.bridge.iter_mut().for_each(|b| *b = false);
        let mut disc = vec![0u32; nv];
        let mut low = vec![0u32; nv];
        let mut time = 1u32;
        // Frame: (vertex, incoming edge id (u32::MAX for root), adj cursor)
        let mut stack: Vec<(u32, u32, usize)> = Vec::new();
        for root in 0..nv as u32 {
            if disc[root as usize] != 0 {
                continue;
            }
            disc[root as usize] = time;
            low[root as usize] = time;
            time += 1;
            stack.push((root, u32::MAX, 0));
            while let Some(&mut (v, pe, ref mut cur)) = stack.last_mut() {
                let vi = v as usize;
                if *cur < self.adj[vi].len() {
                    let (w, e) = self.adj[vi][*cur];
                    *cur += 1;
                    if !self.alive[e as usize] || e == pe {
                        continue;
                    }
                    let wi = w as usize;
                    if disc[wi] == 0 {
                        disc[wi] = time;
                        low[wi] = time;
                        time += 1;
                        stack.push((w, e, 0));
                    } else {
                        low[vi] = low[vi].min(disc[wi]);
                    }
                } else {
                    stack.pop();
                    if let Some(&mut (p, _, _)) = stack.last_mut() {
                        let pi = p as usize;
                        low[pi] = low[pi].min(low[vi]);
                        if low[vi] > disc[pi] {
                            // pe is the tree edge p -> v.
                            self.bridge[pe as usize] = true;
                        }
                    }
                }
            }
        }
    }

    /// Whether all terminal vertices lie in one alive component.
    pub fn terminals_connected(&self) -> bool {
        let Some(&start) = self.terminal_verts.first() else {
            return true;
        };
        let mut seen = vec![false; self.verts.len()];
        let mut stack = vec![start];
        seen[start as usize] = true;
        while let Some(v) = stack.pop() {
            for &(w, e) in &self.adj[v as usize] {
                if self.alive[e as usize] && !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        self.terminal_verts.iter().all(|&t| seen[t as usize])
    }

    /// Whether the alive subgraph is a tree spanning the terminals (no
    /// non-bridge edges left and still connected).
    pub fn is_tree(&self) -> bool {
        self.terminals_connected() && !self.has_non_bridge()
    }

    /// Total alive wire length in µm.
    pub fn alive_length_um(&self) -> f64 {
        self.alive_edges()
            .map(|e| self.edges[e as usize].len_um)
            .sum()
    }

    /// Wire distance (µm) from the driver to every terminal over the
    /// alive subgraph — on a routed tree, the unique path lengths that
    /// determine per-sink delay and skew (§4.2).
    ///
    /// Unreachable terminals (never the case on a routed net) get `∞`.
    pub fn terminal_distances_um(&self) -> Vec<(TermId, f64)> {
        let nv = self.verts.len();
        let mut dist = vec![f64::INFINITY; nv];
        let src = self.driver_vert as usize;
        dist[src] = 0.0;
        // BFS-like relaxation: the alive subgraph is (close to) a tree,
        // so a simple stack pass suffices.
        let mut stack = vec![self.driver_vert];
        while let Some(v) = stack.pop() {
            for &(w, e) in &self.adj[v as usize] {
                if !self.alive[e as usize] {
                    continue;
                }
                let nd = dist[v as usize] + self.edges[e as usize].len_um;
                if nd < dist[w as usize] {
                    dist[w as usize] = nd;
                    stack.push(w);
                }
            }
        }
        self.terminal_verts
            .iter()
            .filter_map(|&t| match self.verts[t as usize].kind {
                RVertKind::Terminal(term) => Some((term, dist[t as usize])),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use bgr_layout::{Geometry, PlacementBuilder};
    use bgr_netlist::{CellId, CellLibrary, CircuitBuilder};

    /// Two INVs in the same row, u1.Y -> u2.A, both pins Both-access.
    /// The routing graph is a 6-cycle: two branches per terminal plus one
    /// trunk per channel.
    pub(crate) fn same_row_net() -> (Circuit, Placement, NetId) {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let y = cb.add_output_pad("y");
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", inv);
        cb.add_net("n0", cb.pad_term(a), [cb.cell_term(u1, "A").unwrap()])
            .unwrap();
        let net = cb
            .add_net(
                "n1",
                cb.cell_term(u1, "Y").unwrap(),
                [cb.cell_term(u2, "A").unwrap()],
            )
            .unwrap();
        cb.add_net("n2", cb.cell_term(u2, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        let circuit = cb.finish().unwrap();
        let mut pb = PlacementBuilder::new(Geometry::default(), 1);
        pb.append_with_width(0, CellId::new(0), 3);
        pb.append_with_width(0, CellId::new(1), 3);
        pb.place_pad_bottom(a, 0);
        pb.place_pad_top(y, 5);
        let placement = pb.finish(&circuit).unwrap();
        (circuit, placement, net)
    }

    #[test]
    fn same_row_graph_is_a_six_cycle() {
        let (circuit, placement, net) = same_row_net();
        let g = RoutingGraph::build(&circuit, &placement, net, &[], 30.0);
        // 2 terminals + 4 taps; 4 branches + 2 trunks.
        assert_eq!(g.verts().len(), 6);
        assert_eq!(g.edges().len(), 6);
        // A cycle has no bridges.
        assert_eq!(g.non_bridge_edges().count(), 6);
        assert!(g.terminals_connected());
        assert!(!g.is_tree());
    }

    #[test]
    fn deleting_one_cycle_edge_leaves_tree_after_prune() {
        let (circuit, placement, net) = same_row_net();
        let mut g = RoutingGraph::build(&circuit, &placement, net, &[], 30.0);
        // Delete the channel-1 trunk.
        let trunk = g
            .alive_edges()
            .find(|&e| {
                g.edges()[e as usize].kind
                    == (REdgeKind::Trunk {
                        channel: ChannelId::new(1),
                    })
            })
            .unwrap();
        g.delete_edge(trunk);
        let pruned = g.prune_dangling();
        // The two channel-1 branches dangle and get pruned.
        assert_eq!(pruned.len(), 2);
        g.recompute_bridges();
        assert!(g.is_tree());
        assert!(g.terminals_connected());
        assert_eq!(g.alive_count(), 3);
    }

    #[test]
    fn generation_tracks_every_mutation() {
        let (circuit, placement, net) = same_row_net();
        let mut g = RoutingGraph::build(&circuit, &placement, net, &[], 30.0);
        let g0 = g.generation();
        let e = g.non_bridge_edges().next().unwrap();
        g.delete_edge(e);
        let g1 = g.generation();
        assert!(g1 > g0, "delete_edge bumps");
        g.prune_dangling();
        g.recompute_bridges();
        let g2 = g.generation();
        assert!(g2 > g1, "prune/recompute bump");
        let mask = g.alive_mask();
        g.restore_all();
        assert!(g.generation() > g2, "restore_all bumps");
        let g3 = g.generation();
        g.set_alive_mask(&mask);
        assert!(g.generation() > g3, "set_alive_mask bumps");
    }

    #[test]
    fn trunk_lengths_use_pitch() {
        let (circuit, placement, net) = same_row_net();
        let g = RoutingGraph::build(&circuit, &placement, net, &[], 30.0);
        // u1.Y at x=2, u2.A at x=3: trunk length = 1 pitch = 8 µm.
        let trunk = g
            .alive_edges()
            .find(|&e| g.edges()[e as usize].kind.is_trunk())
            .unwrap();
        let e = &g.edges()[trunk as usize];
        assert_eq!((e.x1, e.x2), (2, 3));
        assert!((e.len_um - 8.0).abs() < 1e-12);
    }

    /// u1 in row 0, u2 in row 2, feedthrough in row 1 at x = 4.
    pub(crate) fn cross_row_net() -> (Circuit, Placement, NetId) {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let y = cb.add_output_pad("y");
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", inv);
        cb.add_net("n0", cb.pad_term(a), [cb.cell_term(u1, "A").unwrap()])
            .unwrap();
        let net = cb
            .add_net(
                "n1",
                cb.cell_term(u1, "Y").unwrap(),
                [cb.cell_term(u2, "A").unwrap()],
            )
            .unwrap();
        cb.add_net("n2", cb.cell_term(u2, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        let circuit = cb.finish().unwrap();
        let mut pb = PlacementBuilder::new(Geometry::default(), 3);
        pb.append_with_width(0, CellId::new(0), 3);
        pb.append_with_width(2, CellId::new(1), 3);
        pb.place_pad_bottom(a, 0);
        pb.place_pad_top(y, 5);
        let placement = pb.finish(&circuit).unwrap();
        (circuit, placement, net)
    }

    #[test]
    fn cross_row_graph_uses_feedthrough() {
        let (circuit, placement, net) = cross_row_net();
        let g = RoutingGraph::build(&circuit, &placement, net, &[(1, 4)], 30.0);
        assert!(g.terminals_connected());
        // Feed vertex present with two halves.
        let feed_halves = g
            .edges()
            .iter()
            .filter(|e| matches!(e.kind, REdgeKind::FeedHalf { row: 1 }))
            .count();
        assert_eq!(feed_halves, 2);
        // Row height 160 µm: each half is 80.
        let half = g
            .edges()
            .iter()
            .find(|e| matches!(e.kind, REdgeKind::FeedHalf { .. }))
            .unwrap();
        assert!((half.len_um - 80.0).abs() < 1e-12);
    }

    #[test]
    fn without_feed_cross_row_net_is_disconnected() {
        let (circuit, placement, net) = cross_row_net();
        let g = RoutingGraph::build(&circuit, &placement, net, &[], 30.0);
        assert!(!g.terminals_connected());
    }

    #[test]
    fn restore_all_undoes_deletions() {
        let (circuit, placement, net) = same_row_net();
        let mut g = RoutingGraph::build(&circuit, &placement, net, &[], 30.0);
        let e = g.non_bridge_edges().next().unwrap();
        g.delete_edge(e);
        g.prune_dangling();
        g.restore_all();
        assert_eq!(g.alive_count(), g.edges().len());
        assert_eq!(g.non_bridge_edges().count(), 6);
    }

    #[test]
    fn bridge_flags_match_structure() {
        let (circuit, placement, net) = cross_row_net();
        let g = RoutingGraph::build(&circuit, &placement, net, &[(1, 4)], 30.0);
        // The feed halves are the only connection between the two channel
        // groups... unless both terminals offer taps in shared channels.
        // u1 (row 0) taps channels 0,1; u2 (row 2) taps channels 2,3; the
        // feed links 1-2. Every feed-half edge must be a bridge.
        for (i, e) in g.edges().iter().enumerate() {
            if matches!(e.kind, REdgeKind::FeedHalf { .. }) {
                assert!(g.is_bridge(i as u32), "feed half should be a bridge");
            }
        }
    }

    #[test]
    fn alive_length_sums_edges() {
        let (circuit, placement, net) = same_row_net();
        let g = RoutingGraph::build(&circuit, &placement, net, &[], 30.0);
        // 4 branches à 30 µm + 2 trunks à 8 µm.
        assert!((g.alive_length_um() - (4.0 * 30.0 + 2.0 * 8.0)).abs() < 1e-9);
    }

    use bgr_layout::Placement;
    use bgr_netlist::Circuit;
}
