//! The delay-side selection criteria `C_d(e)`, `Gl(e)`, `LD(e)` (§3.2).
//!
//! All three derive from the *local margin*
//! `LM(e, P) = M(P) − max_(v,w) max(0, lp(v) + d′ − lp(w))` (Eq. 2),
//! where `d′` is the new delay of the `G_d(P)` arcs loaded by the net if
//! the net were rerouted around the deleted edge `e` (the hypothetical
//! tentative-tree length).

use bgr_netlist::NetId;
use bgr_timing::Sta;

/// The paper's penalty function:
/// `pen(x, P) = 1 − x/τ_P` for `x ≥ 0`, `exp(−x/τ_P)` for `x < 0`.
///
/// Continuous at 0 (both give 1) and sharply increasing as the margin goes
/// negative.
#[inline]
pub fn pen(x_ps: f64, limit_ps: f64) -> f64 {
    if x_ps >= 0.0 {
        1.0 - x_ps / limit_ps
    } else {
        (-x_ps / limit_ps).exp()
    }
}

/// Hypothetical wire state of a net if one of its edges were deleted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HypWire {
    /// Tentative-tree length assuming the deletion, µm.
    pub length_um: f64,
    /// Wiring capacitance at that length, fF.
    pub cl_ff: f64,
    /// Model-dependent RC term at that length, ps.
    pub rc_ps: f64,
}

/// The three delay criteria for one candidate edge.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DelayCriteria {
    /// `C_d(e)`: number of constraints with `LM(e, P) ≤ 0`.
    pub cd: u32,
    /// `Gl(e)`: `Σ pen(LM(e,P), P) − Σ pen(M(P), P)` — the global delay
    /// penalty increase. Non-negative.
    pub gl: f64,
    /// `LD(e)`: total delay increase over the `G_d(P)` arcs.
    pub ld: f64,
}

impl DelayCriteria {
    /// Evaluates the criteria for deleting an edge of `net`, whose
    /// hypothetical rerouted wire state is `hyp`.
    ///
    /// Nets outside every constraint graph yield all zeros (pure-density
    /// candidates).
    pub fn evaluate(sta: &Sta, net: NetId, hyp: &HypWire) -> Self {
        let mut out = Self::default();
        for &cid in sta.constraints_of_net(net) {
            let cid = cid as usize;
            let m = sta.margin_ps(cid);
            let limit = sta.constraint(cid).constraint().limit_ps;
            let excess = sta.lm_excess_ps(cid, net, hyp.cl_ff, hyp.rc_ps);
            let lm = m - excess;
            if lm <= 0.0 {
                out.cd += 1;
            }
            out.gl += pen(lm, limit) - pen(m, limit);
            out.ld += sta.delay_increase_sum_ps(cid, net, hyp.cl_ff, hyp.rc_ps);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_netlist::{CellLibrary, CircuitBuilder};
    use bgr_timing::{DelayModel, PathConstraint, WireParams};

    #[test]
    fn pen_is_continuous_and_monotone() {
        let tau = 100.0;
        assert!((pen(0.0, tau) - 1.0).abs() < 1e-12);
        assert!((pen(-1e-9, tau) - 1.0).abs() < 1e-6);
        // Decreasing in x.
        assert!(pen(50.0, tau) < pen(10.0, tau));
        assert!(pen(-50.0, tau) > pen(-10.0, tau));
        // Violation grows exponentially.
        assert!(pen(-200.0, tau) > std::f64::consts::E * pen(-100.0, tau) / 1.001);
    }

    fn sta_one_net(limit: f64) -> (Sta, NetId) {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let y = cb.add_output_pad("y");
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", inv);
        cb.add_net("n0", cb.pad_term(a), [cb.cell_term(u1, "A").unwrap()])
            .unwrap();
        let net = cb
            .add_net(
                "n1",
                cb.cell_term(u1, "Y").unwrap(),
                [cb.cell_term(u2, "A").unwrap()],
            )
            .unwrap();
        cb.add_net("n2", cb.cell_term(u2, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        let cons = vec![PathConstraint::new(
            "p",
            cb.pad_term(a),
            cb.pad_term(y),
            limit,
        )];
        let circuit = cb.finish().unwrap();
        let sta = Sta::new(
            &circuit,
            cons,
            DelayModel::Capacitance,
            WireParams::default(),
        )
        .unwrap();
        (sta, net)
    }

    fn hyp_at(sta: &Sta, net: NetId, len: f64) -> HypWire {
        let (cl_ff, rc_ps) = sta.lengths().wire_terms_at(net, len);
        HypWire {
            length_um: len,
            cl_ff,
            rc_ps,
        }
    }

    #[test]
    fn harmless_deletion_scores_zero() {
        let (sta, net) = sta_one_net(10_000.0);
        // Hypothetical length equal to current (0): nothing changes.
        let c = DelayCriteria::evaluate(&sta, net, &hyp_at(&sta, net, 0.0));
        assert_eq!(c.cd, 0);
        assert!(c.gl.abs() < 1e-12);
        assert!(c.ld.abs() < 1e-12);
    }

    #[test]
    fn growth_raises_gl_and_ld() {
        let (sta, net) = sta_one_net(10_000.0);
        let c1 = DelayCriteria::evaluate(&sta, net, &hyp_at(&sta, net, 500.0));
        let c2 = DelayCriteria::evaluate(&sta, net, &hyp_at(&sta, net, 2000.0));
        assert_eq!(c1.cd, 0);
        assert!(c2.gl > c1.gl && c1.gl > 0.0);
        assert!(c2.ld > c1.ld && c1.ld > 0.0);
    }

    #[test]
    fn violation_raises_cd() {
        // Tight limit: static path is ~132.5 ps; limit 140 ps. A 200 µm
        // growth on n1 adds 0.2*200*0.45 = 18 ps -> violation.
        let (sta, net) = sta_one_net(140.0);
        let ok = DelayCriteria::evaluate(&sta, net, &hyp_at(&sta, net, 10.0));
        assert_eq!(ok.cd, 0);
        let bad = DelayCriteria::evaluate(&sta, net, &hyp_at(&sta, net, 200.0));
        assert_eq!(bad.cd, 1);
    }

    #[test]
    fn unconstrained_net_scores_zero() {
        let (sta, _) = sta_one_net(10_000.0);
        // Net 0 (pad-driven) is in no constraint graph.
        let c = DelayCriteria::evaluate(
            &sta,
            NetId::new(0),
            &HypWire {
                length_um: 9999.0,
                cl_ff: 9999.0,
                rc_ps: 9999.0,
            },
        );
        assert_eq!(c, DelayCriteria::default());
    }
}
