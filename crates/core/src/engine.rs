//! The deletion engine: global state and the `select_edge` /
//! `delete_and_modify` loop of Fig. 2 (lines 04–07).
//!
//! One [`Engine`] owns every net's routing graph, the channel-density
//! map, and the incremental timing analyzer. Each iteration selects the
//! best deletable (non-bridge) edge across every in-scope net, ranked by
//! [`crate::select::compare`], deletes the winner, and updates bridges,
//! densities, tentative lengths and margins — so the wiring of all nets
//! is determined *concurrently*, as the paper emphasizes.
//!
//! # Incremental selection
//!
//! Selection runs on a [`Scoreboard`](crate::scoreboard::Scoreboard) by
//! default: every deletable edge's **raw** [`EdgeKey`] — delay prefix
//! plus the edge's own density window, *without* the channel
//! aggregates — sits in its channel's heap with generation-stamped
//! lazy invalidation, and the aggregates are composed in at pop time
//! (see the scoreboard docs for why in-heap order is invariant under
//! composition). After a deletion only the *dirty* nets are re-keyed;
//! since aggregates are not stored, aggregate motion dirties **no**
//! net — the engine merely calls `Scoreboard::refresh_channel` for
//! each channel whose aggregates moved, so the shard's cached minimum
//! is recomposed. The dirty set is derived from explicit invalidation
//! hooks:
//!
//! * **graph** — the deleted net and its cascaded partner (their
//!   [`RoutingGraph::generation`] advanced: alive set, bridges, pruning);
//! * **density window** — nets whose trunk interval overlaps a
//!   *touched span* (removed, pruned or promoted) of a touched
//!   channel, found through a static channel → nets reverse index:
//!   their raw window terms read the density profile there. Branch and
//!   feed keys carry no window terms and never go stale this way;
//! * **timing** — every member net of each constraint the analyzer
//!   refreshed ([`bgr_timing::Sta::nets_of_constraint`]); a length
//!   change moves that constraint's longest paths and margins, which
//!   feed the delay criteria of all member nets.
//!
//! A net dirty for several reasons at once is *counted* once, under a
//! deterministic precedence (graph > span-overlap > constraint — see
//! [`derive_dirty`] and DESIGN.md §9); the dirty *set* is independent
//! of the attribution. The historical `aggregate_moved` re-key cause
//! remains in the probe schema but is structurally zero now.
//!
//! Nets outside the dirty set provably keep their keys, so the
//! scoreboard's pool always equals what a full rescan would compute.
//! The rescan itself remains available as
//! [`SelectionStrategy::FullRescan`] — an executable oracle used by the
//! differential tests to prove byte-identical deletion sequences.
//!
//! # Per-net scan state and parallel re-keying
//!
//! Each net carries a private [`NetScanState`]: the cache of *hypothetical
//! wire states* (tentative-tree length assuming an edge's deletion,
//! keyed on the owning graph's generation) and the *delay-prefix memo*
//! (the `C_d/Gl/LD` triple of an edge, keyed on the graph generation
//! **and** the summed generations of the net's timing constraints — so
//! density-only invalidations reuse it and skip the delay recomputation
//! entirely).
//!
//! Because a champion scan touches only that per-net state plus the
//! shared density map and timing analyzer immutably, re-keying a dirty
//! batch fans out over [`crate::par::scoped_map`] when
//! [`Engine::set_parallelism`] granted threads: the per-net states are
//! taken out of the engine, scanned on scoped worker threads, and
//! merged back — results and probe counters alike — in ascending net-id
//! order, keeping every observable byte-identical to the sequential
//! run (DESIGN.md §10).

use std::collections::BTreeMap;

use bgr_layout::ChannelId;
use bgr_netlist::NetId;
use bgr_timing::Sta;

use crate::config::{CriteriaOrder, SelectionStrategy, VerifyLevel};
use crate::criteria::{DelayCriteria, HypWire};
use crate::density::DensityMap;
use crate::graph::{REdgeKind, RoutingGraph};
use crate::par;
use crate::probe::{
    Corruption, Counter, Hist, NoopProbe, Phase, Probe, RekeyCause, RekeyCauses, Scope, TraceEvent,
};
use crate::scoreboard::Scoreboard;
use crate::select::{compare, deciding_tier, DecidingTier, EdgeKey};
use crate::shard::ShardMap;
use crate::tentative::tentative_length_um;

/// Per-net cache of hypothetical wire states, valid only while the
/// owning graph's generation matches `stamp`.
#[derive(Debug, Default)]
struct HypCache {
    stamp: u64,
    slots: Vec<Option<HypWire>>,
}

/// Per-net memo of the delay prefix (`C_d`, `Gl`, `LD`) of an edge's
/// key, valid while the owning graph's generation **and** the summed
/// generations of the net's constraints both match. Density-only
/// invalidations (`aggregate_moved` / `span_overlap`) move neither, so
/// their re-keys skip the hypothetical-wire path entirely.
///
/// The constraint stamp is the *sum* of
/// [`Sta::constraint_generation`] over the net's constraints: each
/// refresh strictly increases one term, so the sum is strictly
/// monotonic and can never alias a previous state.
#[derive(Debug, Default)]
struct DelayMemo {
    graph_stamp: u64,
    sta_stamp: u64,
    slots: Vec<Option<DelayCriteria>>,
}

/// The mutable state one champion scan needs: everything per-net, so
/// scans of distinct nets are data-disjoint and may run on worker
/// threads (see the [module docs](self)).
#[derive(Debug, Default)]
struct NetScanState {
    hyp: HypCache,
    memo: DelayMemo,
}

/// Probe counters accumulated by one scan, flushed to the engine's
/// probe after the (possibly parallel) batch — always in ascending
/// net-id order, so totals are independent of the thread count.
#[derive(Debug, Default, Clone, Copy)]
struct ScanCounters {
    key_evals: u64,
    hyp_hits: u64,
    hyp_misses: u64,
    memo_hits: u64,
    memo_misses: u64,
    window_queries: u64,
    aggregate_queries: u64,
}

impl ScanCounters {
    fn flush<P: Probe>(&self, probe: &mut P) {
        if !P::ENABLED {
            return;
        }
        probe.count(Counter::KeyEval, self.key_evals);
        probe.count(Counter::HypCacheHit, self.hyp_hits);
        probe.count(Counter::HypCacheMiss, self.hyp_misses);
        probe.count(Counter::DelayMemoHit, self.memo_hits);
        probe.count(Counter::DelayMemoMiss, self.memo_misses);
        probe.count(Counter::DensityWindowQuery, self.window_queries);
        probe.count(Counter::DensityAggregateQuery, self.aggregate_queries);
    }
}

/// Hypothetical wire state if `e` of `net` were deleted (cached until
/// the graph's generation moves).
fn hyp_for(
    g: &RoutingGraph,
    sta: &Sta,
    net: NetId,
    e: u32,
    cache: &mut HypCache,
    c: &mut ScanCounters,
) -> HypWire {
    let gen = g.generation();
    if cache.stamp != gen || cache.slots.len() != g.edges().len() {
        cache.slots.clear();
        cache.slots.resize(g.edges().len(), None);
        cache.stamp = gen;
    }
    if let Some(h) = cache.slots[e as usize] {
        c.hyp_hits += 1;
        return h;
    }
    c.hyp_misses += 1;
    let len = tentative_length_um(g, Some(e))
        .expect("§3.2 invariant: deleting a non-bridge edge keeps the net connected");
    let (cl_ff, rc_ps) = sta.lengths().wire_terms_at(net, len);
    let h = HypWire {
        length_um: len,
        cl_ff,
        rc_ps,
    };
    cache.slots[e as usize] = Some(h);
    h
}

/// The summed constraint-generation stamp of `net` (see [`DelayMemo`]).
fn net_timing_stamp(sta: &Sta, net: NetId) -> u64 {
    sta.constraints_of_net(net)
        .iter()
        .map(|&cid| sta.constraint_generation(cid as usize))
        .sum()
}

/// The delay prefix of `(net, e)`'s key, through the memo. Only called
/// for constrained nets.
fn delay_for(
    g: &RoutingGraph,
    sta: &Sta,
    net: NetId,
    e: u32,
    state: &mut NetScanState,
    c: &mut ScanCounters,
) -> DelayCriteria {
    let graph_stamp = g.generation();
    let sta_stamp = net_timing_stamp(sta, net);
    let memo = &mut state.memo;
    if memo.graph_stamp != graph_stamp
        || memo.sta_stamp != sta_stamp
        || memo.slots.len() != g.edges().len()
    {
        memo.slots.clear();
        memo.slots.resize(g.edges().len(), None);
        memo.graph_stamp = graph_stamp;
        memo.sta_stamp = sta_stamp;
    }
    if let Some(d) = state.memo.slots[e as usize] {
        c.memo_hits += 1;
        return d;
    }
    c.memo_misses += 1;
    let hyp = hyp_for(g, sta, net, e, &mut state.hyp, c);
    let d = DelayCriteria::evaluate(sta, net, &hyp);
    state.memo.slots[e as usize] = Some(d);
    d
}

/// Builds the full comparison key for a deletable edge of `net`. The
/// free-function twin of [`Engine::edge_key`], callable from worker
/// threads: everything mutable it needs is in `state` and `c`.
fn scan_edge_key(
    g: &RoutingGraph,
    density: &DensityMap,
    sta: &Sta,
    net: NetId,
    e: u32,
    state: &mut NetScanState,
    c: &mut ScanCounters,
) -> EdgeKey {
    c.key_evals += 1;
    let delay = if sta.constraints_of_net(net).is_empty() {
        DelayCriteria::default()
    } else {
        delay_for(g, sta, net, e, state, c)
    };
    let edge = g.edges()[e as usize];
    let (is_trunk, f_min, n_min, f_max, n_max) = match edge.kind {
        REdgeKind::Trunk { channel } => {
            c.window_queries += 1;
            c.aggregate_queries += 1;
            let ed = density.edge_density(channel, edge.x1, edge.x2);
            (
                true,
                density.c_min(channel) - ed.d_min,
                density.nc_min(channel) - ed.nd_min,
                density.c_max(channel) - ed.d_max,
                density.nc_max(channel) - ed.nd_max,
            )
        }
        REdgeKind::Branch { channel } => {
            c.aggregate_queries += 1;
            (
                false,
                density.c_min(channel),
                density.nc_min(channel),
                density.c_max(channel),
                density.nc_max(channel),
            )
        }
        REdgeKind::FeedHalf { .. } => (false, 0, 0, 0, 0),
    };
    EdgeKey {
        delay,
        is_trunk,
        f_min,
        n_min,
        f_max,
        n_max,
        len_um: edge.len_um,
        net,
        edge: e,
    }
}

/// `net`'s *champion*: the minimum key over its deletable edges, found
/// with the strict-less linear scan shared by both selection
/// strategies (and by every worker thread of a parallel batch).
fn scan_champion(
    g: &RoutingGraph,
    density: &DensityMap,
    sta: &Sta,
    net: NetId,
    order: CriteriaOrder,
    state: &mut NetScanState,
    c: &mut ScanCounters,
) -> Option<EdgeKey> {
    let mut best: Option<EdgeKey> = None;
    for e in 0..g.edges().len() as u32 {
        if !g.is_alive(e) || g.is_bridge(e) {
            continue;
        }
        let key = scan_edge_key(g, density, sta, net, e, state, c);
        let better = match &best {
            None => true,
            Some(b) => compare(&key, b, order) == std::cmp::Ordering::Less,
        };
        if better {
            best = Some(key);
        }
    }
    best
}

/// Builds the **raw** (composition-free) key for a deletable edge of
/// `net`, plus the channel heap it belongs to (`None` = the
/// channelless feed heap). Raw trunk keys carry the *negated* own
/// window terms, so adding the channel aggregates at pop time yields
/// exactly [`scan_edge_key`]'s composed values; branch and feed keys
/// carry zero density terms (see the scoreboard docs).
fn scan_edge_key_raw(
    g: &RoutingGraph,
    density: &DensityMap,
    sta: &Sta,
    net: NetId,
    e: u32,
    state: &mut NetScanState,
    c: &mut ScanCounters,
) -> (EdgeKey, Option<ChannelId>) {
    c.key_evals += 1;
    let delay = if sta.constraints_of_net(net).is_empty() {
        DelayCriteria::default()
    } else {
        delay_for(g, sta, net, e, state, c)
    };
    let edge = g.edges()[e as usize];
    let (is_trunk, f_min, n_min, f_max, n_max, channel) = match edge.kind {
        REdgeKind::Trunk { channel } => {
            c.window_queries += 1;
            let ed = density.edge_density(channel, edge.x1, edge.x2);
            (
                true,
                -ed.d_min,
                -ed.nd_min,
                -ed.d_max,
                -ed.nd_max,
                Some(channel),
            )
        }
        REdgeKind::Branch { channel } => (false, 0, 0, 0, 0, Some(channel)),
        REdgeKind::FeedHalf { .. } => (false, 0, 0, 0, 0, None),
    };
    (
        EdgeKey {
            delay,
            is_trunk,
            f_min,
            n_min,
            f_max,
            n_max,
            len_um: edge.len_um,
            net,
            edge: e,
        },
        channel,
    )
}

/// The scoreboard re-key payload of `net`: the per-heap **minimum**
/// raw key over its deletable (alive, non-bridge) edges, in first-seen
/// heap order. Every deletable edge is still evaluated, but only one
/// key per heap is kept: composition adds the same aggregates to every
/// key of a heap, so a net's dominated raw keys there can never become
/// its champion — pushing them would only bloat the heaps (ties cannot
/// occur: [`compare`] ends in a net/edge id tie-break).
fn scan_raw_keys(
    g: &RoutingGraph,
    density: &DensityMap,
    sta: &Sta,
    net: NetId,
    order: CriteriaOrder,
    state: &mut NetScanState,
    c: &mut ScanCounters,
) -> Vec<(EdgeKey, Option<ChannelId>)> {
    let mut out: Vec<(EdgeKey, Option<ChannelId>)> = Vec::new();
    for e in 0..g.edges().len() as u32 {
        if !g.is_alive(e) || g.is_bridge(e) {
            continue;
        }
        let (key, channel) = scan_edge_key_raw(g, density, sta, net, e, state, c);
        match out.iter_mut().find(|(_, ch)| *ch == channel) {
            None => out.push((key, channel)),
            Some(slot) => {
                if compare(&key, &slot.0, order) == std::cmp::Ordering::Less {
                    slot.0 = key;
                }
            }
        }
    }
    out
}

/// Derives the dirty set of one deletion with a **deterministic
/// per-net cause attribution**: a net dirty for several reasons is
/// returned once, attributed to the highest-precedence cause —
/// [`RekeyCause::Graph`] > [`RekeyCause::SpanOverlap`] >
/// [`RekeyCause::Constraint`] — independent of the order channels were
/// touched in (DESIGN.md §9). Returns `(net, cause)` pairs in
/// ascending net-id order.
///
/// Aggregate motion is *not* a dirty cause: raw keys carry no
/// aggregates, so a channel whose aggregates moved only needs its
/// shard's cached minimum recomposed
/// ([`Scoreboard::refresh_channel`]). The historical
/// [`RekeyCause::AggregateMoved`] is structurally zero.
///
/// Each argument is one clause of the dirty-set derivation (§8); they
/// stay separate so the signature reads as the specification.
fn derive_dirty<'a>(
    in_scope: &[bool],
    graph_nets: &[NetId],
    spans: &[(ChannelId, i32, i32)],
    channel_nets: &[Vec<(NetId, i32, i32)>],
    refreshed_constraints: &[u32],
    nets_of_constraint: impl Fn(usize) -> &'a [NetId],
) -> Vec<(NetId, RekeyCause)> {
    let mut dirty: BTreeMap<NetId, RekeyCause> = BTreeMap::new();
    // Insertion passes run in precedence order; `or_insert` keeps the
    // first (highest-precedence) attribution.
    for &n in graph_nets {
        if in_scope[n.index()] {
            dirty.entry(n).or_insert(RekeyCause::Graph);
        }
    }
    for &(c, x1, x2) in spans {
        // A touched span moves the density profile over `[x1, x2]`;
        // only trunk keys whose interval overlaps it can have changed
        // raw window terms. Branch-only nets carry the empty sentinel
        // `(MAX, MIN)` and never match.
        for &(n, lo, hi) in &channel_nets[c.index()] {
            if in_scope[n.index()] && lo <= x2 && x1 <= hi {
                dirty.entry(n).or_insert(RekeyCause::SpanOverlap);
            }
        }
    }
    for &cid in refreshed_constraints {
        for &n in nets_of_constraint(cid as usize) {
            if in_scope[n.index()] {
                dirty.entry(n).or_insert(RekeyCause::Constraint);
            }
        }
    }
    dirty.into_iter().collect()
}

/// Below this many champion scans per worker, a batch runs on the
/// calling thread: a scoped spawn costs tens of microseconds, and a
/// typical post-deletion dirty set is a handful of cheap scans.
const MIN_TASKS_PER_THREAD: usize = 8;

/// Outcome of one [`Engine::continue_deletion`] slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeletionRun {
    /// Selections performed by this slice (not counting the `start`
    /// offset).
    pub selections: u64,
    /// `true` when the in-scope candidate pool drained — every in-scope
    /// graph is all-bridges — rather than the slice stopping at `stop`.
    pub complete: bool,
}

/// Mutable routing state shared by the initial-routing and improvement
/// phases.
///
/// Generic over the [`Probe`] observing it; the default [`NoopProbe`]
/// compiles every instrumentation site away (see [`crate::probe`]).
#[derive(Debug)]
pub struct Engine<P: Probe = NoopProbe> {
    graphs: Vec<RoutingGraph>,
    density: DensityMap,
    sta: Sta,
    /// Per-net scan state (hyp cache + delay memo); taken out and
    /// restored around parallel batches.
    scan: Vec<NetScanState>,
    partner: Vec<Option<NetId>>,
    /// Static reverse index: per channel, every net owning at least one
    /// trunk or branch edge there, with the bounding interval of its
    /// *trunk* edges (empty sentinel when the net only branches into the
    /// channel — branch keys read aggregates only). Edge sets never
    /// grow, so this needs no maintenance; dead edges only make it
    /// conservative.
    channel_nets: Vec<Vec<(NetId, i32, i32)>>,
    selection: SelectionStrategy,
    /// Worker threads for champion re-keying (1 = fully sequential).
    threads: usize,
    /// Scoreboard shards (1 = the single global heap).
    shards: usize,
    /// Density spans touched during the current deletion (scratch,
    /// drained by the scoreboard loop).
    delta_spans: Vec<(ChannelId, i32, i32)>,
    /// Aggregate snapshot (`C_M`, `NC_M`, `C_m`, `NC_m`) of each touched
    /// channel, captured before its first mutation of the deletion.
    delta_snap: Vec<(ChannelId, [i32; 4])>,
    /// Constraints the analyzer refreshed during the current deletion.
    delta_cons: Vec<u32>,
    /// Nets whose graph changed during the current deletion.
    delta_nets: Vec<NetId>,
    /// Every selection made by `run_deletion`, in order — the audit
    /// trail compared across strategies by the oracle tests.
    pub selection_log: Vec<(NetId, u32)>,
    /// Diagnostic: nets re-keyed by the scoreboard path, by typed
    /// [`RekeyCause`].
    pub rekey_causes: RekeyCauses,
    /// Total edges deleted (selected + cascaded + pruned).
    pub deletions: usize,
    /// Total nets ripped up and rerouted.
    pub reroutes: usize,
    /// Self-audit level ([`Engine::set_verify`]); `Off` emits nothing.
    verify: VerifyLevel,
    /// Self-audits passed ([`Engine::audit_state`] runs).
    pub audits_passed: u64,
    /// Total comparisons performed across passed self-audits.
    pub audit_checks: u64,
    /// Injected [`Corruption::StaleChampion`] net: re-keying silently
    /// drops its fresh candidates. Always `None` outside fault tests.
    frozen: Option<NetId>,
    /// Injected [`Corruption::SkewDelay`] bias: `refresh_length` adds
    /// the extra to this net's memoized length. Always `None` outside
    /// fault tests.
    skew: Option<(NetId, f64)>,
    /// The instrumentation sink.
    probe: P,
}

impl Engine<NoopProbe> {
    /// Creates an unobserved engine over freshly built routing graphs.
    ///
    /// `partner[net]` marks differential-pair lockstep partners whose
    /// graphs have been verified homogeneous (§4.1); deletions cascade to
    /// them.
    pub fn new(
        graphs: Vec<RoutingGraph>,
        sta: Sta,
        partner: Vec<Option<NetId>>,
        num_channels: usize,
        chip_width: usize,
    ) -> Self {
        Self::with_probe(graphs, sta, partner, num_channels, chip_width, NoopProbe)
    }
}

impl<P: Probe> Engine<P> {
    /// [`Engine::new`] with an explicit [`Probe`] (moved in; retrieve it
    /// with [`Engine::into_parts`] or borrow via [`Engine::probe_mut`]).
    pub fn with_probe(
        mut graphs: Vec<RoutingGraph>,
        sta: Sta,
        partner: Vec<Option<NetId>>,
        num_channels: usize,
        chip_width: usize,
        probe: P,
    ) -> Self {
        let mut density = DensityMap::new(num_channels, chip_width);
        for g in &mut graphs {
            g.prune_dangling();
            g.recompute_bridges();
        }
        for g in &graphs {
            let w = g.width() as i32;
            for e in g.alive_edges() {
                let edge = &g.edges()[e as usize];
                if let REdgeKind::Trunk { channel } = edge.kind {
                    density.add_span(channel, edge.x1, edge.x2, w, g.is_bridge(e));
                }
            }
        }
        let scan = graphs.iter().map(|_| NetScanState::default()).collect();
        let mut channel_nets: Vec<Vec<(NetId, i32, i32)>> = vec![Vec::new(); num_channels];
        for (i, g) in graphs.iter().enumerate() {
            // (channel, trunk bounding interval); the empty sentinel
            // (MAX, MIN) never overlaps anything.
            let mut bounds = vec![(i32::MAX, i32::MIN); num_channels];
            let mut present = vec![false; num_channels];
            for e in g.edges() {
                let Some(c) = e.kind.channel() else { continue };
                present[c.index()] = true;
                if matches!(e.kind, REdgeKind::Trunk { .. }) {
                    let b = &mut bounds[c.index()];
                    b.0 = b.0.min(e.x1);
                    b.1 = b.1.max(e.x2);
                }
            }
            for c in 0..num_channels {
                if present[c] {
                    channel_nets[c].push((NetId::new(i), bounds[c].0, bounds[c].1));
                }
            }
        }
        let mut engine = Self {
            graphs,
            density,
            sta,
            scan,
            partner,
            channel_nets,
            selection: SelectionStrategy::default(),
            threads: 1,
            shards: 1,
            delta_spans: Vec::new(),
            delta_snap: Vec::new(),
            delta_cons: Vec::new(),
            delta_nets: Vec::new(),
            selection_log: Vec::new(),
            rekey_causes: RekeyCauses::default(),
            deletions: 0,
            reroutes: 0,
            verify: VerifyLevel::Off,
            audits_passed: 0,
            audit_checks: 0,
            frozen: None,
            skew: None,
            probe,
        };
        for i in 0..engine.graphs.len() {
            engine.refresh_length(NetId::new(i));
        }
        engine.clear_delta();
        engine
    }

    /// The instrumentation sink (e.g. to emit phase markers).
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// The instrumentation sink, immutably.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// The routing graphs, indexed by net.
    pub fn graphs(&self) -> &[RoutingGraph] {
        &self.graphs
    }

    /// The density map.
    pub fn density(&self) -> &DensityMap {
        &self.density
    }

    /// The timing analyzer.
    pub fn sta(&self) -> &Sta {
        &self.sta
    }

    /// Lockstep partner of a net, if any.
    pub fn partner(&self, net: NetId) -> Option<NetId> {
        self.partner[net.index()]
    }

    /// Selects the candidate-selection strategy for subsequent
    /// [`Engine::run_deletion`] calls. Both strategies produce identical
    /// deletion sequences; `FullRescan` is the testing oracle.
    pub fn set_selection(&mut self, selection: SelectionStrategy) {
        self.selection = selection;
    }

    /// Grants the scoreboard path `threads` worker threads for champion
    /// re-keying and splits its candidate pool into `shards`
    /// channel-region shards. Both default to 1 (fully sequential,
    /// single global heap) and both leave every deterministic
    /// observable — selection log, trees, trace-event stream —
    /// byte-identical (see the [module docs](self) and DESIGN.md §10);
    /// only wall-clock and the parallelism diagnostics counters move.
    pub fn set_parallelism(&mut self, threads: usize, shards: usize) {
        self.threads = threads.max(1);
        self.shards = shards.max(1);
    }

    /// Selects the self-audit level. `Steps` audits inside the deletion
    /// loops; `Phases`/`Final` audits are driven by the router at phase
    /// boundaries. The default `Off` performs and emits nothing, so
    /// traces stay byte-identical to an unverified run.
    pub fn set_verify(&mut self, verify: VerifyLevel) {
        self.verify = verify;
    }

    fn clear_delta(&mut self) {
        self.delta_spans.clear();
        self.delta_snap.clear();
        self.delta_cons.clear();
        self.delta_nets.clear();
    }

    /// Records an imminent density mutation over `[x1, x2]` of `channel`:
    /// snapshots the channel's aggregates on first touch (so the
    /// scoreboard loop can tell whether they actually moved) and logs the
    /// span. Must be called *before* the mutation.
    fn note_touch(&mut self, channel: ChannelId, x1: i32, x2: i32) {
        if !self.delta_snap.iter().any(|(c, _)| *c == channel) {
            self.delta_snap
                .push((channel, self.channel_aggregates(channel)));
        }
        self.delta_spans.push((channel, x1, x2));
    }

    fn channel_aggregates(&self, channel: ChannelId) -> [i32; 4] {
        [
            self.density.c_max(channel),
            self.density.nc_max(channel),
            self.density.c_min(channel),
            self.density.nc_min(channel),
        ]
    }

    fn refresh_length(&mut self, net: NetId) {
        let mut len = tentative_length_um(&self.graphs[net.index()], None)
            .expect("§3.2 invariant: only non-bridge deletions run, so net graphs stay connected");
        if P::ENABLED {
            // SkewDelay injection lives *inside* the refresh so
            // improvement-phase snapshots/restores (which re-refresh)
            // cannot wash the corruption out.
            if let Some((n, extra)) = self.skew {
                if n == net {
                    len += extra;
                }
            }
        }
        if self.sta.set_net_length(net, len) {
            self.delta_cons
                .extend_from_slice(self.sta.constraints_of_net(net));
        }
    }

    /// Polls the probe for an injected state corruption and applies it
    /// to the incremental structures. Compiles away entirely under the
    /// default disabled probe; only fault-injection tests ever take the
    /// corruption branch.
    fn apply_corruption(&mut self) {
        if !P::ENABLED {
            return;
        }
        let Some(c) = self.probe.corruption() else {
            return;
        };
        match c {
            Corruption::FlipDensitySpan {
                channel,
                x1,
                x2,
                width,
            } => {
                // A phantom span added without `note_touch`: no snapshot,
                // no re-keying — the incremental profile silently drifts
                // from what the alive trees imply.
                if (channel as usize) < self.density.num_channels() {
                    self.density
                        .add_span(ChannelId::new(channel as usize), x1, x2, width, false);
                }
            }
            Corruption::StaleChampion { net } => self.frozen = Some(net),
            Corruption::SkewDelay { net, extra_um } => {
                let first = self.skew.is_none();
                self.skew = Some((net, extra_um));
                if first {
                    self.refresh_length(net);
                }
            }
        }
    }

    /// Recomputes the density profile and every memoized net length
    /// from scratch and compares them against the incremental state.
    /// Returns the number of comparisons performed.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on the first divergence; under
    /// [`crate::GlobalRouter::route_checked`] the panic surfaces as
    /// [`crate::RouteError::Internal`].
    pub fn audit_state(&self) -> u64 {
        let mut checks = 0u64;
        let mut fresh = DensityMap::new(self.density.num_channels(), self.density.width());
        for g in &self.graphs {
            let w = g.width() as i32;
            for e in g.alive_edges() {
                let edge = &g.edges()[e as usize];
                if let REdgeKind::Trunk { channel } = edge.kind {
                    fresh.add_span(channel, edge.x1, edge.x2, w, g.is_bridge(e));
                }
            }
        }
        for c in 0..self.density.num_channels() {
            let ch = ChannelId::new(c);
            let got = self.channel_aggregates(ch);
            let want = [
                fresh.c_max(ch),
                fresh.nc_max(ch),
                fresh.c_min(ch),
                fresh.nc_min(ch),
            ];
            checks += 4;
            assert!(
                got == want,
                "self-audit: density aggregates [C_M, NC_M, C_m, NC_m] of channel {c} diverged: \
                 incremental {got:?}, from-scratch {want:?}"
            );
        }
        for (i, g) in self.graphs.iter().enumerate() {
            let want = tentative_length_um(g, None)
                .expect("audited graphs stay connected (§3.2 invariant)");
            let got = self.sta.lengths().length_um(NetId::new(i));
            checks += 1;
            assert!(
                (got - want).abs() <= 1e-6,
                "self-audit: memoized length of net {i} diverged: \
                 incremental {got} um, from-scratch {want} um"
            );
        }
        checks
    }

    /// [`Engine::audit_state`] recorded in the audit totals but emitting
    /// no trace event — the [`VerifyLevel::Final`] path, which must
    /// leave the deterministic event stream untouched.
    pub fn audit_silent(&mut self) -> u64 {
        let checks = self.audit_state();
        self.audits_passed += 1;
        self.audit_checks += checks;
        checks
    }

    /// [`Engine::audit_state`] at a phase boundary, emitting
    /// [`TraceEvent::AuditPassed`] — the [`VerifyLevel::Phases`] /
    /// [`VerifyLevel::Steps`] path, driven by the router after each
    /// engine phase.
    pub fn audit_phase(&mut self, phase: Phase) {
        let checks = self.audit_silent();
        self.probe.event(TraceEvent::AuditPassed { phase, checks });
    }

    /// Mid-loop audit hook: under [`VerifyLevel::Steps`], audits every
    /// N-th selection and emits [`TraceEvent::AuditStep`]. Called by
    /// both selection strategies at the same stream positions, so the
    /// events are strategy-independent. `step` is the *global* selection
    /// count (the loop's `start` offset plus this slice's selections) so
    /// a resumed run audits at the same stream positions as an
    /// uninterrupted one.
    fn maybe_step_audit(&mut self, step: u64) {
        if let Some(n) = self.verify.step_interval() {
            if step.is_multiple_of(n) {
                let checks = self.audit_silent();
                self.probe.event(TraceEvent::AuditStep { step, checks });
            }
        }
    }

    /// Builds the full comparison key for a deletable edge.
    pub fn edge_key(&mut self, net: NetId, e: u32) -> EdgeKey {
        let mut c = ScanCounters::default();
        let key = scan_edge_key(
            &self.graphs[net.index()],
            &self.density,
            &self.sta,
            net,
            e,
            &mut self.scan[net.index()],
            &mut c,
        );
        c.flush(&mut self.probe);
        key
    }

    fn remove_density(&mut self, net: NetId, e: u32) {
        let g = &self.graphs[net.index()];
        let edge = g.edges()[e as usize];
        if let REdgeKind::Trunk { channel } = edge.kind {
            let (w, bridge) = (g.width() as i32, g.is_bridge(e));
            self.note_touch(channel, edge.x1, edge.x2);
            self.density
                .remove_span(channel, edge.x1, edge.x2, w, bridge);
        }
    }

    /// Deletes one edge of one net and restores every invariant: density
    /// spans, pruned dangling chains, bridge flags (with `d_m`
    /// promotions), and the net's tentative length / margins. The
    /// hypothesis cache invalidates itself through the graph generation.
    ///
    /// Touched channels, refreshed constraints and the changed net are
    /// recorded in the engine's delta scratch for scoreboard re-keying.
    ///
    /// # Panics
    ///
    /// Panics if the edge is dead or a bridge.
    pub fn delete_one(&mut self, net: NetId, e: u32) {
        let ni = net.index();
        assert!(self.graphs[ni].is_alive(e), "edge already dead");
        assert!(!self.graphs[ni].is_bridge(e), "refusing to delete a bridge");
        self.remove_density(net, e);
        self.graphs[ni].delete_edge(e);
        self.deletions += 1;
        self.delta_nets.push(net);
        let pruned = self.graphs[ni].prune_dangling();
        self.deletions += pruned.len();
        if !pruned.is_empty() {
            self.probe.event(TraceEvent::Pruned {
                net,
                count: pruned.len() as u32,
            });
        }
        for pe in pruned {
            // Density removal uses the stale bridge flag, which is exactly
            // the status the span was added/promoted under.
            let g = &self.graphs[ni];
            let edge = g.edges()[pe as usize];
            if let REdgeKind::Trunk { channel } = edge.kind {
                let (w, bridge) = (g.width() as i32, g.is_bridge(pe));
                self.note_touch(channel, edge.x1, edge.x2);
                self.density
                    .remove_span(channel, edge.x1, edge.x2, w, bridge);
            }
        }
        let old_bridge: Vec<bool> = (0..self.graphs[ni].edges().len() as u32)
            .map(|i| self.graphs[ni].is_bridge(i))
            .collect();
        self.graphs[ni].recompute_bridges();
        for i in 0..self.graphs[ni].edges().len() as u32 {
            let g = &self.graphs[ni];
            if g.is_alive(i) && !old_bridge[i as usize] && g.is_bridge(i) {
                let edge = g.edges()[i as usize];
                if let REdgeKind::Trunk { channel } = edge.kind {
                    let w = g.width() as i32;
                    self.note_touch(channel, edge.x1, edge.x2);
                    self.density.promote_span(channel, edge.x1, edge.x2, w);
                }
            }
        }
        self.refresh_length(net);
        // Deletion always starts from a non-tree (a tree has only
        // bridges), so the transition fires exactly once per completion.
        if P::ENABLED && self.graphs[ni].is_tree() {
            self.probe.event(TraceEvent::NetBecameTree { net });
        }
    }

    /// Deletes an edge and cascades to the differential partner (§4.1):
    /// the homogeneous partner graph deletes the same edge index when it
    /// is still deletable there.
    pub fn delete_with_partner(&mut self, net: NetId, e: u32) {
        self.delete_one(net, e);
        if let Some(p) = self.partner[net.index()] {
            let pg = &self.graphs[p.index()];
            if pg.is_alive(e) && !pg.is_bridge(e) {
                self.probe
                    .event(TraceEvent::CascadeDeleted { net: p, edge: e });
                self.delete_one(p, e);
            }
        }
    }

    /// Runs the deletion loop over `scope` (all nets when `None`) until no
    /// in-scope non-bridge edge remains. Returns the number of selections.
    pub fn run_deletion(&mut self, scope: Option<&[NetId]>, order: CriteriaOrder) -> usize {
        self.run_deletion_budgeted(scope, order, None)
    }

    /// [`Engine::run_deletion`] with a deterministic selection ceiling.
    ///
    /// When `budget` runs out before every in-scope graph is a tree, the
    /// engine emits [`TraceEvent::BudgetExhausted`] (attributed to
    /// [`Phase::InitialRouting`] — the only phase the router budgets
    /// through this path) and switches to the fallback completion path:
    /// per net in ascending id order, repeatedly delete the first alive
    /// non-bridge edge until only bridges remain. The fallback skips all
    /// key evaluation, so it is cheap, and it is a pure function of the
    /// graph state at the stop point — which both selection strategies
    /// reach identically — so the trace stream stays byte-identical
    /// across strategies, threads and shards. Every graph still ends a
    /// spanning tree (the loop only terminates on all-bridges).
    pub fn run_deletion_budgeted(
        &mut self,
        scope: Option<&[NetId]>,
        order: CriteriaOrder,
        budget: Option<u64>,
    ) -> usize {
        let run = self.continue_deletion(scope, order, 0, budget);
        let selections = run.selections as usize;
        match budget {
            Some(b) if run.selections >= b => selections + self.fallback_complete(scope, b),
            _ => selections,
        }
    }

    /// One *slice* of the deletion loop: picks up at global selection
    /// count `start` and runs until the in-scope candidate pool drains
    /// or the global count reaches `stop`.
    ///
    /// This is the resumable core of [`Engine::run_deletion_budgeted`]
    /// (which is `continue_deletion(scope, order, 0, budget)` plus the
    /// fallback completion path). Because selection is memoryless — the
    /// scoreboard is rebuilt from the current graph/density/timing state
    /// at every entry, and that state is a pure function of the alive
    /// masks — running the loop in slices produces exactly the
    /// selections, trace events and step audits of one uninterrupted
    /// run: `start` only offsets the step counter fed to
    /// [`TraceEvent::AuditStep`] and the `stop` comparison, both of
    /// which are global positions (DESIGN.md §13).
    pub fn continue_deletion(
        &mut self,
        scope: Option<&[NetId]>,
        order: CriteriaOrder,
        start: u64,
        stop: Option<u64>,
    ) -> DeletionRun {
        match self.selection {
            SelectionStrategy::Scoreboard => {
                self.run_deletion_scoreboard(scope, order, start, stop)
            }
            SelectionStrategy::FullRescan => self.run_deletion_rescan(scope, order, start, stop),
        }
    }

    /// Post-budget completion: deletes first-deletable edges until every
    /// in-scope graph is a tree. Returns the number of fallback
    /// deletions; emits nothing when there was nothing left to do.
    pub(crate) fn fallback_complete(&mut self, scope: Option<&[NetId]>, steps_used: u64) -> usize {
        let nets: Vec<NetId> = match scope {
            Some(s) => s.to_vec(),
            None => (0..self.graphs.len()).map(NetId::new).collect(),
        };
        let deletable = |g: &RoutingGraph| g.alive_edges().find(|&e| !g.is_bridge(e));
        if !nets
            .iter()
            .any(|&n| deletable(&self.graphs[n.index()]).is_some())
        {
            return 0;
        }
        self.probe.event(TraceEvent::BudgetExhausted {
            phase: crate::probe::Phase::InitialRouting,
            steps: steps_used,
        });
        let mut extra = 0;
        for &net in &nets {
            while let Some(e) = deletable(&self.graphs[net.index()]) {
                self.probe
                    .event(TraceEvent::FallbackDeleted { net, edge: e });
                self.clear_delta();
                self.delete_with_partner(net, e);
                self.selection_log.push((net, e));
                extra += 1;
            }
        }
        extra
    }

    /// The naive oracle: recomputes every in-scope candidate key each
    /// iteration and linearly scans for the minimum. The scan runs
    /// per-net champion (min over champions == global min under the
    /// total selection order), which lets it track the *runner-up
    /// champion* — the same runner-up the scoreboard observes — for
    /// strategy-independent decision provenance.
    fn run_deletion_rescan(
        &mut self,
        scope: Option<&[NetId]>,
        order: CriteriaOrder,
        start: u64,
        stop: Option<u64>,
    ) -> DeletionRun {
        let nets: Vec<NetId> = match scope {
            Some(s) => s.to_vec(),
            None => (0..self.graphs.len()).map(NetId::new).collect(),
        };
        let mut selections: u64 = 0;
        let complete = loop {
            if stop.is_some_and(|b| start + selections >= b) {
                break false;
            }
            let mut best: Option<EdgeKey> = None;
            // Runner-up tracking exists only to feed the probe.
            let mut second: Option<EdgeKey> = None;
            for &net in &nets {
                let Some(key) = self.champion(net, order) else {
                    continue;
                };
                let better = match &best {
                    None => true,
                    Some(b) => compare(&key, b, order) == std::cmp::Ordering::Less,
                };
                if better {
                    if P::ENABLED {
                        second = best;
                    }
                    best = Some(key);
                } else if P::ENABLED {
                    let closer = match &second {
                        None => true,
                        Some(s) => compare(&key, s, order) == std::cmp::Ordering::Less,
                    };
                    if closer {
                        second = Some(key);
                    }
                }
            }
            let Some(key) = best else { break true };
            if P::ENABLED {
                let tier = match &second {
                    Some(s) => deciding_tier(&key, s, order),
                    None => DecidingTier::OnlyCandidate,
                };
                self.probe.event(TraceEvent::DeletionSelected {
                    net: key.net,
                    edge: key.edge,
                    tier,
                });
            }
            self.clear_delta();
            self.delete_with_partner(key.net, key.edge);
            self.selection_log.push((key.net, key.edge));
            selections += 1;
            self.maybe_step_audit(start + selections);
        };
        DeletionRun {
            selections,
            complete,
        }
    }

    /// `net`'s *champion*: the minimum key over its deletable edges
    /// (see [`scan_champion`]).
    fn champion(&mut self, net: NetId, order: CriteriaOrder) -> Option<EdgeKey> {
        let mut c = ScanCounters::default();
        let best = scan_champion(
            &self.graphs[net.index()],
            &self.density,
            &self.sta,
            net,
            order,
            &mut self.scan[net.index()],
            &mut c,
        );
        c.flush(&mut self.probe);
        best
    }

    /// The per-heap minimum raw keys of one net's deletable edges (see
    /// [`scan_raw_keys`]), counters flushed to the probe.
    fn raw_keys(&mut self, net: NetId, order: CriteriaOrder) -> Vec<(EdgeKey, Option<ChannelId>)> {
        let mut c = ScanCounters::default();
        let keys = scan_raw_keys(
            &self.graphs[net.index()],
            &self.density,
            &self.sta,
            net,
            order,
            &mut self.scan[net.index()],
            &mut c,
        );
        c.flush(&mut self.probe);
        keys
    }

    /// Raw keys of `nets` (ascending net ids, no duplicates), in input
    /// order — the batch twin of [`Engine::raw_keys`], fanned out over
    /// [`par::scoped_map`] when the batch is big enough for the granted
    /// thread count to pay for its spawns.
    ///
    /// Every observable is independent of the fan-out: each scan reads
    /// the shared density map / analyzer immutably and owns its net's
    /// [`NetScanState`] (taken out of the engine, restored after the
    /// join), results come back in input order, and per-scan probe
    /// counters are flushed in that same order.
    fn raw_keys_for(
        &mut self,
        nets: &[NetId],
        order: CriteriaOrder,
    ) -> Vec<Vec<(EdgeKey, Option<ChannelId>)>> {
        let threads = self.threads.min(nets.len() / MIN_TASKS_PER_THREAD).max(1);
        if threads <= 1 {
            return nets.iter().map(|&n| self.raw_keys(n, order)).collect();
        }
        let mut tasks: Vec<(NetId, NetScanState)> = nets
            .iter()
            .map(|&n| (n, std::mem::take(&mut self.scan[n.index()])))
            .collect();
        let (graphs, density, sta) = (&self.graphs, &self.density, &self.sta);
        let results = par::scoped_map(threads, &mut tasks, |(net, state)| {
            let mut c = ScanCounters::default();
            let keys = scan_raw_keys(
                &graphs[net.index()],
                density,
                sta,
                *net,
                order,
                state,
                &mut c,
            );
            (keys, c)
        });
        for (net, state) in tasks {
            self.scan[net.index()] = state;
        }
        if P::ENABLED {
            self.probe.count(Counter::ParBatch, 1);
            self.probe.count(Counter::ParTask, nets.len() as u64);
        }
        results
            .into_iter()
            .map(|(keys, c)| {
                c.flush(&mut self.probe);
                keys
            })
            .collect()
    }

    /// Computes and pushes the raw keys of `nets` (ascending, deduped)
    /// into the scoreboard, bumping their generations first when
    /// `invalidate` (the re-key path; `false` only for the initial
    /// build, where generations are already fresh).
    fn rekey_nets(&mut self, sb: &mut Scoreboard, nets: &[NetId], invalidate: bool) {
        let raw = self.raw_keys_for(nets, sb.order());
        if P::ENABLED && invalidate {
            let fresh = raw.iter().map(Vec::len).sum::<usize>() as u64;
            self.probe.sample(Hist::MergeBatchSize, fresh);
        }
        for (&net, keys) in nets.iter().zip(raw) {
            if invalidate {
                sb.invalidate_net(net);
            }
            if P::ENABLED && self.frozen == Some(net) {
                // StaleChampion injection: invalidation ran but the
                // fresh candidates are silently dropped — the loop now
                // believes the net is finished.
                continue;
            }
            if P::ENABLED && !keys.is_empty() {
                self.probe.count(Counter::HeapPush, keys.len() as u64);
            }
            for (key, channel) in keys {
                sb.push(key, channel);
            }
        }
    }

    /// The incremental path: scoreboard selection with dirty-set
    /// re-keying (see the [module docs](self) for the invalidation
    /// derivation).
    fn run_deletion_scoreboard(
        &mut self,
        scope: Option<&[NetId]>,
        order: CriteriaOrder,
        start: u64,
        stop: Option<u64>,
    ) -> DeletionRun {
        let nets: Vec<NetId> = match scope {
            Some(s) => s.to_vec(),
            None => (0..self.graphs.len()).map(NetId::new).collect(),
        };
        let mut in_scope = vec![false; self.graphs.len()];
        for &n in &nets {
            in_scope[n.index()] = true;
        }
        let map = if self.shards <= 1 {
            ShardMap::single(self.channel_nets.len() + 1)
        } else {
            // Band channels by live entry population (nets with edges in
            // the channel == the heap's maximum entry count), not by
            // channel count alone, so a few hot channels don't
            // concentrate most rebuild work in one shard. Diagnostics
            // only: shard layout never changes the selection sequence.
            let weights: Vec<usize> = self.channel_nets.iter().map(Vec::len).collect();
            ShardMap::by_channel_bands_weighted(self.shards, &weights)
        };
        let mut sb = Scoreboard::with_shards(map, self.graphs.len(), order);
        self.apply_corruption();
        if P::PROFILING {
            self.probe.scope_enter(Scope::Rekey);
        }
        self.rekey_nets(&mut sb, &nets, false);
        if P::PROFILING {
            self.probe.scope_exit(Scope::Rekey);
        }
        let mut selections: u64 = 0;
        let complete = loop {
            // The budget check precedes the pop, so the stop point (and
            // the heap-pop diagnostics under a fixed shard count) is the
            // same in every run.
            if stop.is_some_and(|b| start + selections >= b) {
                break false;
            }
            self.apply_corruption();
            if P::PROFILING {
                self.probe.scope_enter(Scope::Select);
            }
            let popped = sb.pop_valid_probed(&self.density, &mut self.probe);
            let Some(key) = popped else {
                if P::PROFILING {
                    self.probe.scope_exit(Scope::Select);
                }
                break true;
            };
            debug_assert!(
                self.graphs[key.net.index()].is_alive(key.edge)
                    && !self.graphs[key.net.index()].is_bridge(key.edge),
                "scoreboard returned a non-deletable edge"
            );
            if P::ENABLED {
                // Runner-up peek: the best composed key over every other
                // net's live entries — the same runner-up champion the
                // rescan oracle tracks. Unprobed on purpose — provenance
                // peeking must not perturb the heap-pop diagnostics.
                let tier = match sb.runner_up(key.net, &self.density) {
                    Some(second) => deciding_tier(&key, &second, order),
                    None => DecidingTier::OnlyCandidate,
                };
                self.probe.event(TraceEvent::DeletionSelected {
                    net: key.net,
                    edge: key.edge,
                    tier,
                });
            }
            if P::PROFILING {
                self.probe.scope_exit(Scope::Select);
                self.probe.scope_enter(Scope::DeleteModify);
            }
            self.clear_delta();
            self.delete_with_partner(key.net, key.edge);
            self.selection_log.push((key.net, key.edge));
            selections += 1;
            if P::PROFILING {
                self.probe.scope_exit(Scope::DeleteModify);
                self.probe.scope_enter(Scope::DeriveDirty);
            }

            // Dirty set: changed nets ∪ window-affected nets ∪ nets of
            // refreshed constraints, restricted to the scope, each net
            // attributed to one cause under the deterministic precedence
            // of `derive_dirty`. Channels whose aggregates moved dirty
            // no net — their shard minima are merely recomposed.
            let d_nets = std::mem::take(&mut self.delta_nets);
            let d_spans = std::mem::take(&mut self.delta_spans);
            let d_snap = std::mem::take(&mut self.delta_snap);
            let d_cons = std::mem::take(&mut self.delta_cons);
            for &(c, before) in &d_snap {
                if before != self.channel_aggregates(c) {
                    sb.refresh_channel(c);
                }
            }
            let dirty = derive_dirty(
                &in_scope,
                &d_nets,
                &d_spans,
                &self.channel_nets,
                &d_cons,
                |cid| self.sta.nets_of_constraint(cid),
            );
            // Hand the scratch buffers back for reuse.
            self.delta_nets = d_nets;
            self.delta_spans = d_spans;
            self.delta_snap = d_snap;
            self.delta_cons = d_cons;
            self.probe.sample(Hist::DirtySetSize, dirty.len() as u64);
            let mut dirty_nets = Vec::with_capacity(dirty.len());
            for &(net, cause) in &dirty {
                self.rekey_causes.record(cause);
                self.probe.rekey(net, cause);
                dirty_nets.push(net);
            }
            if P::PROFILING {
                self.probe.scope_exit(Scope::DeriveDirty);
                // Per-cause attribution: re-key each dirty net alone so
                // its wall-clock lands under `rekey:<cause>`. Same nets,
                // same order, same keys pushed — deterministic
                // observables are untouched; only the batch-size
                // diagnostics (MergeBatchSize, ParBatch) differ, which
                // strategy-dependent counters are allowed to do.
                self.probe.scope_enter(Scope::Rekey);
                for &(net, cause) in &dirty {
                    self.probe.scope_enter(Scope::RekeyFor(cause));
                    self.rekey_nets(&mut sb, &[net], true);
                    self.probe.scope_exit(Scope::RekeyFor(cause));
                }
                self.probe.scope_exit(Scope::Rekey);
                self.probe.scope_enter(Scope::Audit);
                self.maybe_step_audit(start + selections);
                self.probe.scope_exit(Scope::Audit);
            } else {
                self.rekey_nets(&mut sb, &dirty_nets, true);
                self.maybe_step_audit(start + selections);
            }
        };
        DeletionRun {
            selections,
            complete,
        }
    }

    /// Rips up a net (and its lockstep partner) and reroutes it with the
    /// given criteria order (§3.5 improvement phases).
    pub fn reroute_net(&mut self, net: NetId, order: CriteriaOrder) {
        let mut scope = vec![net];
        if let Some(p) = self.partner[net.index()] {
            scope.push(p);
        }
        for &n in &scope {
            let ni = n.index();
            // Remove the current (tree) density contribution.
            for e in 0..self.graphs[ni].edges().len() as u32 {
                if self.graphs[ni].is_alive(e) {
                    let g = &self.graphs[ni];
                    let edge = g.edges()[e as usize];
                    if let REdgeKind::Trunk { channel } = edge.kind {
                        self.density.remove_span(
                            channel,
                            edge.x1,
                            edge.x2,
                            g.width() as i32,
                            g.is_bridge(e),
                        );
                    }
                }
            }
            self.graphs[ni].restore_all();
            self.graphs[ni].prune_dangling();
            self.graphs[ni].recompute_bridges();
            for e in 0..self.graphs[ni].edges().len() as u32 {
                let g = &self.graphs[ni];
                if g.is_alive(e) {
                    let edge = g.edges()[e as usize];
                    if let REdgeKind::Trunk { channel } = edge.kind {
                        self.density.add_span(
                            channel,
                            edge.x1,
                            edge.x2,
                            g.width() as i32,
                            g.is_bridge(e),
                        );
                    }
                }
            }
            self.refresh_length(n);
            self.reroutes += 1;
        }
        self.run_deletion(Some(&scope), order);
    }

    /// Captures the alive-edge masks of a net and its partner, for
    /// revertible rerouting.
    pub fn snapshot(&self, net: NetId) -> Vec<(NetId, Vec<bool>)> {
        let mut out = vec![(net, self.graphs[net.index()].alive_mask())];
        if let Some(p) = self.partner[net.index()] {
            out.push((p, self.graphs[p.index()].alive_mask()));
        }
        out
    }

    /// Restores a snapshot taken with [`Engine::snapshot`], rebuilding
    /// density spans, lengths and margins.
    pub fn restore(&mut self, snapshot: &[(NetId, Vec<bool>)]) {
        for (net, mask) in snapshot {
            let ni = net.index();
            // Remove current density contribution.
            for e in 0..self.graphs[ni].edges().len() as u32 {
                if self.graphs[ni].is_alive(e) {
                    let g = &self.graphs[ni];
                    let edge = g.edges()[e as usize];
                    if let REdgeKind::Trunk { channel } = edge.kind {
                        self.density.remove_span(
                            channel,
                            edge.x1,
                            edge.x2,
                            g.width() as i32,
                            g.is_bridge(e),
                        );
                    }
                }
            }
            self.graphs[ni].set_alive_mask(mask);
            for e in 0..self.graphs[ni].edges().len() as u32 {
                let g = &self.graphs[ni];
                if g.is_alive(e) {
                    let edge = g.edges()[e as usize];
                    if let REdgeKind::Trunk { channel } = edge.kind {
                        self.density.add_span(
                            channel,
                            edge.x1,
                            edge.x2,
                            g.width() as i32,
                            g.is_bridge(e),
                        );
                    }
                }
            }
            self.refresh_length(*net);
        }
    }

    /// Whether every net's graph is now a spanning tree.
    pub fn all_trees(&self) -> bool {
        self.graphs.iter().all(|g| g.is_tree())
    }

    /// Consumes the engine, returning graphs, density, analyzer and the
    /// probe (with everything it collected).
    pub fn into_parts(self) -> (Vec<RoutingGraph>, DensityMap, Sta, P) {
        (self.graphs, self.density, self.sta, self.probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::tests::same_row_net;
    use crate::graph::RoutingGraph;
    use bgr_timing::{DelayModel, Sta, WireParams};

    fn engine_for_same_row() -> Engine {
        let (circuit, placement, _net) = same_row_net();
        let graphs: Vec<RoutingGraph> = circuit
            .net_ids()
            .map(|n| RoutingGraph::build(&circuit, &placement, n, &[], 30.0))
            .collect();
        let sta = Sta::new(
            &circuit,
            vec![],
            DelayModel::Capacitance,
            WireParams::default(),
        )
        .unwrap();
        let partner = vec![None; circuit.nets().len()];
        let width = placement.width_pitches() as usize;
        Engine::new(graphs, sta, partner, placement.num_channels(), width)
    }

    #[test]
    fn initial_state_has_density_and_lengths() {
        let engine = engine_for_same_row();
        // Channel 0 and 1 both have trunk spans from net n1 plus branches
        // don't count; some density must exist.
        let total: i32 = (0..engine.density().num_channels())
            .map(|c| engine.density().c_max(bgr_layout::ChannelId::new(c)))
            .sum();
        assert!(total > 0);
        assert!(engine.sta().lengths().total_length_um() > 0.0);
    }

    #[test]
    fn run_deletion_reaches_all_trees() {
        let mut engine = engine_for_same_row();
        assert!(!engine.all_trees());
        let selections = engine.run_deletion(None, CriteriaOrder::DelayFirst);
        assert!(selections > 0);
        assert!(engine.all_trees());
        // After routing, every alive edge is a bridge: d_m == d_M.
        for g in engine.graphs() {
            for e in g.alive_edges() {
                assert!(g.is_bridge(e));
            }
        }
    }

    #[test]
    fn deletion_reduces_density_upper_bound() {
        let mut engine = engine_for_same_row();
        let before: i32 = (0..engine.density().num_channels())
            .map(|c| engine.density().c_max(bgr_layout::ChannelId::new(c)))
            .sum();
        engine.run_deletion(None, CriteriaOrder::DelayFirst);
        let after: i32 = (0..engine.density().num_channels())
            .map(|c| engine.density().c_max(bgr_layout::ChannelId::new(c)))
            .sum();
        assert!(after <= before);
    }

    #[test]
    fn reroute_restores_and_resolves() {
        let mut engine = engine_for_same_row();
        engine.run_deletion(None, CriteriaOrder::DelayFirst);
        let len_before = engine.sta().lengths().total_length_um();
        engine.reroute_net(bgr_netlist::NetId::new(1), CriteriaOrder::AreaFirst);
        assert!(engine.all_trees());
        // Deterministic graphs: rerouting an optimal tree keeps length.
        let len_after = engine.sta().lengths().total_length_um();
        assert!((len_before - len_after).abs() < 1e-6);
    }

    #[test]
    fn deletion_count_includes_prunes() {
        let mut engine = engine_for_same_row();
        engine.run_deletion(None, CriteriaOrder::DelayFirst);
        assert!(engine.deletions > 0);
    }

    #[test]
    fn scoreboard_matches_full_rescan_sequence() {
        let mut fast = engine_for_same_row();
        let mut oracle = engine_for_same_row();
        oracle.set_selection(SelectionStrategy::FullRescan);
        let s1 = fast.run_deletion(None, CriteriaOrder::DelayFirst);
        let s2 = oracle.run_deletion(None, CriteriaOrder::DelayFirst);
        assert_eq!(s1, s2);
        assert_eq!(fast.selection_log, oracle.selection_log);
        for (gf, go) in fast.graphs().iter().zip(oracle.graphs()) {
            assert_eq!(gf.alive_mask(), go.alive_mask());
        }
    }

    #[test]
    fn empty_scope_run_deletion_is_a_no_op() {
        for strategy in [SelectionStrategy::Scoreboard, SelectionStrategy::FullRescan] {
            let mut engine = engine_for_same_row();
            engine.set_selection(strategy);
            let masks: Vec<_> = engine.graphs().iter().map(|g| g.alive_mask()).collect();
            assert_eq!(engine.run_deletion(Some(&[]), CriteriaOrder::DelayFirst), 0);
            assert!(engine.selection_log.is_empty());
            let after: Vec<_> = engine.graphs().iter().map(|g| g.alive_mask()).collect();
            assert_eq!(masks, after, "{strategy:?} touched a graph");
        }
    }

    #[test]
    fn parallel_rekeying_matches_sequential_engine_byte_for_byte() {
        let mut seq = engine_for_same_row();
        let mut par = engine_for_same_row();
        par.set_parallelism(8, 4);
        let s1 = seq.run_deletion(None, CriteriaOrder::DelayFirst);
        let s2 = par.run_deletion(None, CriteriaOrder::DelayFirst);
        assert_eq!(s1, s2);
        assert_eq!(seq.selection_log, par.selection_log);
        assert_eq!(seq.rekey_causes, par.rekey_causes);
        for (gs, gp) in seq.graphs().iter().zip(par.graphs()) {
            assert_eq!(gs.alive_mask(), gp.alive_mask());
        }
    }

    /// A net dirty for several reasons at once is attributed exactly
    /// once, under the fixed precedence Graph > SpanOverlap >
    /// Constraint, however the channels were touched; and aggregate
    /// motion is no dirty cause at all — only span overlap re-keys
    /// density readers now that raw keys carry no aggregates.
    #[test]
    fn derive_dirty_attributes_one_cause_with_fixed_precedence() {
        use bgr_layout::ChannelId;
        let in_scope = vec![true; 4];
        let c1 = ChannelId::new(1);
        // Channel 0: nets 0, 1 (net 1 trunk over [0, 10]).
        // Channel 1: nets 1, 2 (trunks over [0, 10] and [20, 30]), net 3
        // branch-only (empty interval sentinel).
        let channel_nets = vec![
            vec![(NetId::new(0), 2, 6), (NetId::new(1), 0, 10)],
            vec![
                (NetId::new(1), 0, 10),
                (NetId::new(2), 20, 30),
                (NetId::new(3), i32::MAX, i32::MIN),
            ],
        ];
        let cons_nets = [NetId::new(0), NetId::new(2)];
        let nets_of = |_cid: usize| &cons_nets[..];
        // Net 0 changed its graph *and* belongs to a refreshed
        // constraint (Graph wins); net 1 overlaps the touched span of
        // c1; net 2 is constraint-dirty only.
        let dirty = super::derive_dirty(
            &in_scope,
            &[NetId::new(0)],
            &[(c1, 5, 8)],
            &channel_nets,
            &[0],
            nets_of,
        );
        assert_eq!(
            dirty,
            vec![
                (NetId::new(0), RekeyCause::Graph),
                (NetId::new(1), RekeyCause::SpanOverlap),
                (NetId::new(2), RekeyCause::Constraint),
            ]
        );
        // Span [25, 28] overlaps net 2's trunk instead: net 2 gets
        // SpanOverlap (> Constraint); net 1's interval misses it and
        // falls out of the density clause entirely.
        let dirty = super::derive_dirty(
            &in_scope,
            &[],
            &[(c1, 25, 28)],
            &channel_nets,
            &[0],
            nets_of,
        );
        assert_eq!(
            dirty,
            vec![
                (NetId::new(0), RekeyCause::Constraint),
                (NetId::new(2), RekeyCause::SpanOverlap),
            ]
        );
        // Branch-only nets (empty sentinel) never match a span overlap,
        // and out-of-scope nets are dropped entirely.
        let scoped = vec![false, true, true, true];
        let dirty = super::derive_dirty(
            &scoped,
            &[NetId::new(0)],
            &[(c1, 0, 40)],
            &channel_nets,
            &[],
            nets_of,
        );
        assert_eq!(
            dirty,
            vec![
                (NetId::new(1), RekeyCause::SpanOverlap),
                (NetId::new(2), RekeyCause::SpanOverlap),
            ]
        );
    }

    #[test]
    fn derive_dirty_graph_beats_span_overlap_for_the_deleted_net() {
        use bgr_layout::ChannelId;
        let in_scope = vec![true; 2];
        let c0 = ChannelId::new(0);
        let channel_nets = vec![vec![(NetId::new(0), 0, 4), (NetId::new(1), 2, 9)]];
        let empty: [NetId; 0] = [];
        // The deleted net's own span was touched: the net is both
        // graph-dirty and span-overlap-dirty; Graph wins, and the
        // neighbor whose trunk overlaps the span re-keys as
        // SpanOverlap.
        let dirty = super::derive_dirty(
            &in_scope,
            &[NetId::new(0)],
            &[(c0, 0, 4)],
            &channel_nets,
            &[],
            |_| &empty[..],
        );
        assert_eq!(
            dirty,
            vec![
                (NetId::new(0), RekeyCause::Graph),
                (NetId::new(1), RekeyCause::SpanOverlap),
            ]
        );
    }

    #[test]
    fn scoreboard_matches_oracle_through_reroutes() {
        let mut fast = engine_for_same_row();
        let mut oracle = engine_for_same_row();
        oracle.set_selection(SelectionStrategy::FullRescan);
        for engine in [&mut fast, &mut oracle] {
            engine.run_deletion(None, CriteriaOrder::DelayFirst);
            engine.reroute_net(bgr_netlist::NetId::new(1), CriteriaOrder::AreaFirst);
            engine.reroute_net(bgr_netlist::NetId::new(0), CriteriaOrder::DelayFirst);
        }
        assert_eq!(fast.selection_log, oracle.selection_log);
        assert_eq!(fast.deletions, oracle.deletions);
    }
}
