//! The deletion engine: global state and the `select_edge` /
//! `delete_and_modify` loop of Fig. 2 (lines 04–07).
//!
//! One [`Engine`] owns every net's routing graph, the channel-density
//! map, and the incremental timing analyzer. Each iteration selects the
//! best deletable (non-bridge) edge across every in-scope net, ranked by
//! [`crate::select::compare`], deletes the winner, and updates bridges,
//! densities, tentative lengths and margins — so the wiring of all nets
//! is determined *concurrently*, as the paper emphasizes.
//!
//! # Incremental selection
//!
//! Selection runs on a [`Scoreboard`](crate::scoreboard::Scoreboard) by
//! default: every candidate's [`EdgeKey`] sits in a heap with
//! generation-stamped lazy invalidation, and after a deletion only the
//! *dirty* nets are re-keyed. The dirty set is derived from explicit
//! invalidation hooks:
//!
//! * **graph** — the deleted net and its cascaded partner (their
//!   [`RoutingGraph::generation`] advanced: alive set, bridges, pruning);
//! * **density** — nets reading a *touched channel* (span removed,
//!   pruned or promoted there), found through a static channel → nets
//!   reverse index. The channel's four aggregates are snapshotted at
//!   first touch: if they moved, every net with an edge there is dirty
//!   (branch keys read the aggregates); if they held, only trunk keys
//!   whose interval overlaps a touched span can have changed (their
//!   window query reads the profile there), so only those nets re-key;
//! * **timing** — every member net of each constraint the analyzer
//!   refreshed ([`bgr_timing::Sta::nets_of_constraint`]); a length
//!   change moves that constraint's longest paths and margins, which
//!   feed the delay criteria of all member nets.
//!
//! Nets outside the dirty set provably keep their keys, so the
//! scoreboard's pool always equals what a full rescan would compute.
//! The rescan itself remains available as
//! [`SelectionStrategy::FullRescan`] — an executable oracle used by the
//! differential tests to prove byte-identical deletion sequences.
//!
//! Per-edge *hypothetical wire states* (tentative-tree length assuming
//! the edge's deletion) are cached per net and keyed on the owning
//! graph's generation, so they invalidate themselves the moment the
//! graph changes.

use std::collections::BTreeSet;

use bgr_layout::ChannelId;
use bgr_netlist::NetId;
use bgr_timing::Sta;

use crate::config::{CriteriaOrder, SelectionStrategy};
use crate::criteria::{DelayCriteria, HypWire};
use crate::density::DensityMap;
use crate::graph::{REdgeKind, RoutingGraph};
use crate::probe::{Counter, Hist, NoopProbe, Probe, RekeyCause, RekeyCauses, TraceEvent};
use crate::scoreboard::Scoreboard;
use crate::select::{compare, deciding_tier, DecidingTier, EdgeKey};
use crate::tentative::tentative_length_um;

/// Per-net cache of hypothetical wire states, valid only while the
/// owning graph's generation matches `stamp`.
#[derive(Debug)]
struct HypCache {
    stamp: u64,
    slots: Vec<Option<HypWire>>,
}

/// Mutable routing state shared by the initial-routing and improvement
/// phases.
///
/// Generic over the [`Probe`] observing it; the default [`NoopProbe`]
/// compiles every instrumentation site away (see [`crate::probe`]).
#[derive(Debug)]
pub struct Engine<P: Probe = NoopProbe> {
    graphs: Vec<RoutingGraph>,
    density: DensityMap,
    sta: Sta,
    hyp: Vec<HypCache>,
    partner: Vec<Option<NetId>>,
    /// Static reverse index: per channel, every net owning at least one
    /// trunk or branch edge there, with the bounding interval of its
    /// *trunk* edges (empty sentinel when the net only branches into the
    /// channel — branch keys read aggregates only). Edge sets never
    /// grow, so this needs no maintenance; dead edges only make it
    /// conservative.
    channel_nets: Vec<Vec<(NetId, i32, i32)>>,
    selection: SelectionStrategy,
    /// Density spans touched during the current deletion (scratch,
    /// drained by the scoreboard loop).
    delta_spans: Vec<(ChannelId, i32, i32)>,
    /// Aggregate snapshot (`C_M`, `NC_M`, `C_m`, `NC_m`) of each touched
    /// channel, captured before its first mutation of the deletion.
    delta_snap: Vec<(ChannelId, [i32; 4])>,
    /// Constraints the analyzer refreshed during the current deletion.
    delta_cons: Vec<u32>,
    /// Nets whose graph changed during the current deletion.
    delta_nets: Vec<NetId>,
    /// Every selection made by `run_deletion`, in order — the audit
    /// trail compared across strategies by the oracle tests.
    pub selection_log: Vec<(NetId, u32)>,
    /// Diagnostic: nets re-keyed by the scoreboard path, by typed
    /// [`RekeyCause`].
    pub rekey_causes: RekeyCauses,
    /// Total edges deleted (selected + cascaded + pruned).
    pub deletions: usize,
    /// Total nets ripped up and rerouted.
    pub reroutes: usize,
    /// The instrumentation sink.
    probe: P,
}

impl Engine<NoopProbe> {
    /// Creates an unobserved engine over freshly built routing graphs.
    ///
    /// `partner[net]` marks differential-pair lockstep partners whose
    /// graphs have been verified homogeneous (§4.1); deletions cascade to
    /// them.
    pub fn new(
        graphs: Vec<RoutingGraph>,
        sta: Sta,
        partner: Vec<Option<NetId>>,
        num_channels: usize,
        chip_width: usize,
    ) -> Self {
        Self::with_probe(graphs, sta, partner, num_channels, chip_width, NoopProbe)
    }
}

impl<P: Probe> Engine<P> {
    /// [`Engine::new`] with an explicit [`Probe`] (moved in; retrieve it
    /// with [`Engine::into_parts`] or borrow via [`Engine::probe_mut`]).
    pub fn with_probe(
        mut graphs: Vec<RoutingGraph>,
        sta: Sta,
        partner: Vec<Option<NetId>>,
        num_channels: usize,
        chip_width: usize,
        probe: P,
    ) -> Self {
        let mut density = DensityMap::new(num_channels, chip_width);
        for g in &mut graphs {
            g.prune_dangling();
            g.recompute_bridges();
        }
        for g in &graphs {
            let w = g.width() as i32;
            for e in g.alive_edges() {
                let edge = &g.edges()[e as usize];
                if let REdgeKind::Trunk { channel } = edge.kind {
                    density.add_span(channel, edge.x1, edge.x2, w, g.is_bridge(e));
                }
            }
        }
        let hyp = graphs
            .iter()
            .map(|g| HypCache {
                stamp: g.generation(),
                slots: vec![None; g.edges().len()],
            })
            .collect();
        let mut channel_nets: Vec<Vec<(NetId, i32, i32)>> = vec![Vec::new(); num_channels];
        for (i, g) in graphs.iter().enumerate() {
            // (channel, trunk bounding interval); the empty sentinel
            // (MAX, MIN) never overlaps anything.
            let mut bounds = vec![(i32::MAX, i32::MIN); num_channels];
            let mut present = vec![false; num_channels];
            for e in g.edges() {
                let Some(c) = e.kind.channel() else { continue };
                present[c.index()] = true;
                if matches!(e.kind, REdgeKind::Trunk { .. }) {
                    let b = &mut bounds[c.index()];
                    b.0 = b.0.min(e.x1);
                    b.1 = b.1.max(e.x2);
                }
            }
            for c in 0..num_channels {
                if present[c] {
                    channel_nets[c].push((NetId::new(i), bounds[c].0, bounds[c].1));
                }
            }
        }
        let mut engine = Self {
            graphs,
            density,
            sta,
            hyp,
            partner,
            channel_nets,
            selection: SelectionStrategy::default(),
            delta_spans: Vec::new(),
            delta_snap: Vec::new(),
            delta_cons: Vec::new(),
            delta_nets: Vec::new(),
            selection_log: Vec::new(),
            rekey_causes: RekeyCauses::default(),
            deletions: 0,
            reroutes: 0,
            probe,
        };
        for i in 0..engine.graphs.len() {
            engine.refresh_length(NetId::new(i));
        }
        engine.clear_delta();
        engine
    }

    /// The instrumentation sink (e.g. to emit phase markers).
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// The instrumentation sink, immutably.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// The routing graphs, indexed by net.
    pub fn graphs(&self) -> &[RoutingGraph] {
        &self.graphs
    }

    /// The density map.
    pub fn density(&self) -> &DensityMap {
        &self.density
    }

    /// The timing analyzer.
    pub fn sta(&self) -> &Sta {
        &self.sta
    }

    /// Lockstep partner of a net, if any.
    pub fn partner(&self, net: NetId) -> Option<NetId> {
        self.partner[net.index()]
    }

    /// Selects the candidate-selection strategy for subsequent
    /// [`Engine::run_deletion`] calls. Both strategies produce identical
    /// deletion sequences; `FullRescan` is the testing oracle.
    pub fn set_selection(&mut self, selection: SelectionStrategy) {
        self.selection = selection;
    }

    fn clear_delta(&mut self) {
        self.delta_spans.clear();
        self.delta_snap.clear();
        self.delta_cons.clear();
        self.delta_nets.clear();
    }

    /// Records an imminent density mutation over `[x1, x2]` of `channel`:
    /// snapshots the channel's aggregates on first touch (so the
    /// scoreboard loop can tell whether they actually moved) and logs the
    /// span. Must be called *before* the mutation.
    fn note_touch(&mut self, channel: ChannelId, x1: i32, x2: i32) {
        if !self.delta_snap.iter().any(|(c, _)| *c == channel) {
            self.delta_snap
                .push((channel, self.channel_aggregates(channel)));
        }
        self.delta_spans.push((channel, x1, x2));
    }

    fn channel_aggregates(&self, channel: ChannelId) -> [i32; 4] {
        [
            self.density.c_max(channel),
            self.density.nc_max(channel),
            self.density.c_min(channel),
            self.density.nc_min(channel),
        ]
    }

    fn refresh_length(&mut self, net: NetId) {
        let len = tentative_length_um(&self.graphs[net.index()], None)
            .expect("net graphs stay connected");
        if self.sta.set_net_length(net, len) {
            self.delta_cons
                .extend_from_slice(self.sta.constraints_of_net(net));
        }
    }

    /// Hypothetical wire state if `e` of `net` were deleted (cached until
    /// the graph's generation moves).
    fn hyp_for(&mut self, net: NetId, e: u32) -> HypWire {
        let ni = net.index();
        let gen = self.graphs[ni].generation();
        let cache = &mut self.hyp[ni];
        if cache.stamp != gen {
            cache.slots.iter_mut().for_each(|h| *h = None);
            cache.stamp = gen;
        }
        if let Some(h) = cache.slots[e as usize] {
            self.probe.count(Counter::HypCacheHit, 1);
            return h;
        }
        self.probe.count(Counter::HypCacheMiss, 1);
        let len = tentative_length_um(&self.graphs[ni], Some(e))
            .expect("deleting a non-bridge keeps the net connected");
        let (cl_ff, rc_ps) = self.sta.lengths().wire_terms_at(net, len);
        let h = HypWire {
            length_um: len,
            cl_ff,
            rc_ps,
        };
        self.hyp[ni].slots[e as usize] = Some(h);
        h
    }

    /// Builds the full comparison key for a deletable edge.
    pub fn edge_key(&mut self, net: NetId, e: u32) -> EdgeKey {
        self.probe.count(Counter::KeyEval, 1);
        let delay = if self.sta.constraints_of_net(net).is_empty() {
            DelayCriteria::default()
        } else {
            let hyp = self.hyp_for(net, e);
            DelayCriteria::evaluate(&self.sta, net, &hyp)
        };
        let g = &self.graphs[net.index()];
        let edge = g.edges()[e as usize];
        let (is_trunk, f_min, n_min, f_max, n_max) = match edge.kind {
            REdgeKind::Trunk { channel } => {
                self.probe.count(Counter::DensityWindowQuery, 1);
                self.probe.count(Counter::DensityAggregateQuery, 1);
                let ed = self.density.edge_density(channel, edge.x1, edge.x2);
                (
                    true,
                    self.density.c_min(channel) - ed.d_min,
                    self.density.nc_min(channel) - ed.nd_min,
                    self.density.c_max(channel) - ed.d_max,
                    self.density.nc_max(channel) - ed.nd_max,
                )
            }
            REdgeKind::Branch { channel } => {
                self.probe.count(Counter::DensityAggregateQuery, 1);
                (
                    false,
                    self.density.c_min(channel),
                    self.density.nc_min(channel),
                    self.density.c_max(channel),
                    self.density.nc_max(channel),
                )
            }
            REdgeKind::FeedHalf { .. } => (false, 0, 0, 0, 0),
        };
        EdgeKey {
            delay,
            is_trunk,
            f_min,
            n_min,
            f_max,
            n_max,
            len_um: edge.len_um,
            net,
            edge: e,
        }
    }

    fn remove_density(&mut self, net: NetId, e: u32) {
        let g = &self.graphs[net.index()];
        let edge = g.edges()[e as usize];
        if let REdgeKind::Trunk { channel } = edge.kind {
            let (w, bridge) = (g.width() as i32, g.is_bridge(e));
            self.note_touch(channel, edge.x1, edge.x2);
            self.density
                .remove_span(channel, edge.x1, edge.x2, w, bridge);
        }
    }

    /// Deletes one edge of one net and restores every invariant: density
    /// spans, pruned dangling chains, bridge flags (with `d_m`
    /// promotions), and the net's tentative length / margins. The
    /// hypothesis cache invalidates itself through the graph generation.
    ///
    /// Touched channels, refreshed constraints and the changed net are
    /// recorded in the engine's delta scratch for scoreboard re-keying.
    ///
    /// # Panics
    ///
    /// Panics if the edge is dead or a bridge.
    pub fn delete_one(&mut self, net: NetId, e: u32) {
        let ni = net.index();
        assert!(self.graphs[ni].is_alive(e), "edge already dead");
        assert!(!self.graphs[ni].is_bridge(e), "refusing to delete a bridge");
        self.remove_density(net, e);
        self.graphs[ni].delete_edge(e);
        self.deletions += 1;
        self.delta_nets.push(net);
        let pruned = self.graphs[ni].prune_dangling();
        self.deletions += pruned.len();
        if !pruned.is_empty() {
            self.probe.event(TraceEvent::Pruned {
                net,
                count: pruned.len() as u32,
            });
        }
        for pe in pruned {
            // Density removal uses the stale bridge flag, which is exactly
            // the status the span was added/promoted under.
            let g = &self.graphs[ni];
            let edge = g.edges()[pe as usize];
            if let REdgeKind::Trunk { channel } = edge.kind {
                let (w, bridge) = (g.width() as i32, g.is_bridge(pe));
                self.note_touch(channel, edge.x1, edge.x2);
                self.density
                    .remove_span(channel, edge.x1, edge.x2, w, bridge);
            }
        }
        let old_bridge: Vec<bool> = (0..self.graphs[ni].edges().len() as u32)
            .map(|i| self.graphs[ni].is_bridge(i))
            .collect();
        self.graphs[ni].recompute_bridges();
        for i in 0..self.graphs[ni].edges().len() as u32 {
            let g = &self.graphs[ni];
            if g.is_alive(i) && !old_bridge[i as usize] && g.is_bridge(i) {
                let edge = g.edges()[i as usize];
                if let REdgeKind::Trunk { channel } = edge.kind {
                    let w = g.width() as i32;
                    self.note_touch(channel, edge.x1, edge.x2);
                    self.density.promote_span(channel, edge.x1, edge.x2, w);
                }
            }
        }
        self.refresh_length(net);
        // Deletion always starts from a non-tree (a tree has only
        // bridges), so the transition fires exactly once per completion.
        if P::ENABLED && self.graphs[ni].is_tree() {
            self.probe.event(TraceEvent::NetBecameTree { net });
        }
    }

    /// Deletes an edge and cascades to the differential partner (§4.1):
    /// the homogeneous partner graph deletes the same edge index when it
    /// is still deletable there.
    pub fn delete_with_partner(&mut self, net: NetId, e: u32) {
        self.delete_one(net, e);
        if let Some(p) = self.partner[net.index()] {
            let pg = &self.graphs[p.index()];
            if pg.is_alive(e) && !pg.is_bridge(e) {
                self.probe
                    .event(TraceEvent::CascadeDeleted { net: p, edge: e });
                self.delete_one(p, e);
            }
        }
    }

    /// Runs the deletion loop over `scope` (all nets when `None`) until no
    /// in-scope non-bridge edge remains. Returns the number of selections.
    pub fn run_deletion(&mut self, scope: Option<&[NetId]>, order: CriteriaOrder) -> usize {
        match self.selection {
            SelectionStrategy::Scoreboard => self.run_deletion_scoreboard(scope, order),
            SelectionStrategy::FullRescan => self.run_deletion_rescan(scope, order),
        }
    }

    /// The naive oracle: recomputes every in-scope candidate key each
    /// iteration and linearly scans for the minimum. The scan runs
    /// per-net champion (min over champions == global min under the
    /// total selection order), which lets it track the *runner-up
    /// champion* — the same runner-up the scoreboard observes — for
    /// strategy-independent decision provenance.
    fn run_deletion_rescan(&mut self, scope: Option<&[NetId]>, order: CriteriaOrder) -> usize {
        let nets: Vec<NetId> = match scope {
            Some(s) => s.to_vec(),
            None => (0..self.graphs.len()).map(NetId::new).collect(),
        };
        let mut selections = 0;
        loop {
            let mut best: Option<EdgeKey> = None;
            // Runner-up tracking exists only to feed the probe.
            let mut second: Option<EdgeKey> = None;
            for &net in &nets {
                let Some(key) = self.champion(net, order) else {
                    continue;
                };
                let better = match &best {
                    None => true,
                    Some(b) => compare(&key, b, order) == std::cmp::Ordering::Less,
                };
                if better {
                    if P::ENABLED {
                        second = best;
                    }
                    best = Some(key);
                } else if P::ENABLED {
                    let closer = match &second {
                        None => true,
                        Some(s) => compare(&key, s, order) == std::cmp::Ordering::Less,
                    };
                    if closer {
                        second = Some(key);
                    }
                }
            }
            let Some(key) = best else { break };
            if P::ENABLED {
                let tier = match &second {
                    Some(s) => deciding_tier(&key, s, order),
                    None => DecidingTier::OnlyCandidate,
                };
                self.probe.event(TraceEvent::DeletionSelected {
                    net: key.net,
                    edge: key.edge,
                    tier,
                });
            }
            self.clear_delta();
            self.delete_with_partner(key.net, key.edge);
            self.selection_log.push((key.net, key.edge));
            selections += 1;
        }
        selections
    }

    /// `net`'s *champion*: the minimum key over its deletable edges,
    /// found with the strict-less linear scan shared by both selection
    /// strategies.
    fn champion(&mut self, net: NetId, order: CriteriaOrder) -> Option<EdgeKey> {
        let mut best: Option<EdgeKey> = None;
        let ecount = self.graphs[net.index()].edges().len() as u32;
        for e in 0..ecount {
            let g = &self.graphs[net.index()];
            if !g.is_alive(e) || g.is_bridge(e) {
                continue;
            }
            let key = self.edge_key(net, e);
            let better = match &best {
                None => true,
                Some(b) => compare(&key, b, order) == std::cmp::Ordering::Less,
            };
            if better {
                best = Some(key);
            }
        }
        best
    }

    /// Pushes `net`'s champion, so the heap holds at most one live entry
    /// per net.
    fn push_keys(&mut self, sb: &mut Scoreboard, net: NetId) {
        if let Some(key) = self.champion(net, sb.order()) {
            self.probe.count(Counter::HeapPush, 1);
            sb.push(key);
        }
    }

    /// The incremental path: scoreboard selection with dirty-set
    /// re-keying (see the [module docs](self) for the invalidation
    /// derivation).
    fn run_deletion_scoreboard(&mut self, scope: Option<&[NetId]>, order: CriteriaOrder) -> usize {
        let nets: Vec<NetId> = match scope {
            Some(s) => s.to_vec(),
            None => (0..self.graphs.len()).map(NetId::new).collect(),
        };
        let mut in_scope = vec![false; self.graphs.len()];
        for &n in &nets {
            in_scope[n.index()] = true;
        }
        let mut sb = Scoreboard::new(self.graphs.len(), order);
        for &net in &nets {
            self.push_keys(&mut sb, net);
        }
        let mut selections = 0;
        while let Some(key) = sb.pop_valid_probed(&mut self.probe) {
            debug_assert!(
                self.graphs[key.net.index()].is_alive(key.edge)
                    && !self.graphs[key.net.index()].is_bridge(key.edge),
                "scoreboard returned a non-deletable edge"
            );
            if P::ENABLED {
                // Runner-up champion peek: pop the next valid entry and
                // push it straight back (re-stamped under its unchanged
                // generation). Unprobed on purpose — provenance peeking
                // must not perturb the heap-pop diagnostics.
                let tier = match sb.pop_valid() {
                    Some(second) => {
                        let t = deciding_tier(&key, &second, order);
                        sb.push(second);
                        t
                    }
                    None => DecidingTier::OnlyCandidate,
                };
                self.probe.event(TraceEvent::DeletionSelected {
                    net: key.net,
                    edge: key.edge,
                    tier,
                });
            }
            self.clear_delta();
            self.delete_with_partner(key.net, key.edge);
            self.selection_log.push((key.net, key.edge));
            selections += 1;

            // Dirty set: changed nets ∪ density-affected nets ∪ nets of
            // refreshed constraints, restricted to the scope. BTreeSet
            // gives a deterministic re-key order.
            let d_nets = std::mem::take(&mut self.delta_nets);
            let d_spans = std::mem::take(&mut self.delta_spans);
            let d_snap = std::mem::take(&mut self.delta_snap);
            let d_cons = std::mem::take(&mut self.delta_cons);
            let mut dirty: BTreeSet<NetId> = BTreeSet::new();
            for n in d_nets.iter().copied().filter(|n| in_scope[n.index()]) {
                if dirty.insert(n) {
                    self.rekey_causes.record(RekeyCause::Graph);
                    self.probe.rekey(n, RekeyCause::Graph);
                }
            }
            for &(c, before) in &d_snap {
                if before != self.channel_aggregates(c) {
                    // Aggregates moved: every key referencing this channel
                    // (trunk or branch) changed.
                    for &(n, _, _) in &self.channel_nets[c.index()] {
                        if in_scope[n.index()] && dirty.insert(n) {
                            self.rekey_causes.record(RekeyCause::AggregateMoved);
                            self.probe.rekey(n, RekeyCause::AggregateMoved);
                        }
                    }
                } else {
                    // Aggregates held: only trunk keys whose interval
                    // overlaps a touched span can have moved (their
                    // edge-density window query reads the profile there).
                    for &(n, lo, hi) in &self.channel_nets[c.index()] {
                        if in_scope[n.index()]
                            && d_spans
                                .iter()
                                .any(|&(sc, x1, x2)| sc == c && lo <= x2 && x1 <= hi)
                            && dirty.insert(n)
                        {
                            self.rekey_causes.record(RekeyCause::SpanOverlap);
                            self.probe.rekey(n, RekeyCause::SpanOverlap);
                        }
                    }
                }
            }
            for &cid in &d_cons {
                for &n in self.sta.nets_of_constraint(cid as usize) {
                    if in_scope[n.index()] && dirty.insert(n) {
                        self.rekey_causes.record(RekeyCause::Constraint);
                        self.probe.rekey(n, RekeyCause::Constraint);
                    }
                }
            }
            // Hand the scratch buffers back for reuse.
            self.delta_nets = d_nets;
            self.delta_spans = d_spans;
            self.delta_snap = d_snap;
            self.delta_cons = d_cons;
            self.probe.sample(Hist::DirtySetSize, dirty.len() as u64);
            for net in dirty {
                sb.invalidate_net(net);
                self.push_keys(&mut sb, net);
            }
        }
        selections
    }

    /// Rips up a net (and its lockstep partner) and reroutes it with the
    /// given criteria order (§3.5 improvement phases).
    pub fn reroute_net(&mut self, net: NetId, order: CriteriaOrder) {
        let mut scope = vec![net];
        if let Some(p) = self.partner[net.index()] {
            scope.push(p);
        }
        for &n in &scope {
            let ni = n.index();
            // Remove the current (tree) density contribution.
            for e in 0..self.graphs[ni].edges().len() as u32 {
                if self.graphs[ni].is_alive(e) {
                    let g = &self.graphs[ni];
                    let edge = g.edges()[e as usize];
                    if let REdgeKind::Trunk { channel } = edge.kind {
                        self.density.remove_span(
                            channel,
                            edge.x1,
                            edge.x2,
                            g.width() as i32,
                            g.is_bridge(e),
                        );
                    }
                }
            }
            self.graphs[ni].restore_all();
            self.graphs[ni].prune_dangling();
            self.graphs[ni].recompute_bridges();
            for e in 0..self.graphs[ni].edges().len() as u32 {
                let g = &self.graphs[ni];
                if g.is_alive(e) {
                    let edge = g.edges()[e as usize];
                    if let REdgeKind::Trunk { channel } = edge.kind {
                        self.density.add_span(
                            channel,
                            edge.x1,
                            edge.x2,
                            g.width() as i32,
                            g.is_bridge(e),
                        );
                    }
                }
            }
            self.refresh_length(n);
            self.reroutes += 1;
        }
        self.run_deletion(Some(&scope), order);
    }

    /// Captures the alive-edge masks of a net and its partner, for
    /// revertible rerouting.
    pub fn snapshot(&self, net: NetId) -> Vec<(NetId, Vec<bool>)> {
        let mut out = vec![(net, self.graphs[net.index()].alive_mask())];
        if let Some(p) = self.partner[net.index()] {
            out.push((p, self.graphs[p.index()].alive_mask()));
        }
        out
    }

    /// Restores a snapshot taken with [`Engine::snapshot`], rebuilding
    /// density spans, lengths and margins.
    pub fn restore(&mut self, snapshot: &[(NetId, Vec<bool>)]) {
        for (net, mask) in snapshot {
            let ni = net.index();
            // Remove current density contribution.
            for e in 0..self.graphs[ni].edges().len() as u32 {
                if self.graphs[ni].is_alive(e) {
                    let g = &self.graphs[ni];
                    let edge = g.edges()[e as usize];
                    if let REdgeKind::Trunk { channel } = edge.kind {
                        self.density.remove_span(
                            channel,
                            edge.x1,
                            edge.x2,
                            g.width() as i32,
                            g.is_bridge(e),
                        );
                    }
                }
            }
            self.graphs[ni].set_alive_mask(mask);
            for e in 0..self.graphs[ni].edges().len() as u32 {
                let g = &self.graphs[ni];
                if g.is_alive(e) {
                    let edge = g.edges()[e as usize];
                    if let REdgeKind::Trunk { channel } = edge.kind {
                        self.density.add_span(
                            channel,
                            edge.x1,
                            edge.x2,
                            g.width() as i32,
                            g.is_bridge(e),
                        );
                    }
                }
            }
            self.refresh_length(*net);
        }
    }

    /// Whether every net's graph is now a spanning tree.
    pub fn all_trees(&self) -> bool {
        self.graphs.iter().all(|g| g.is_tree())
    }

    /// Consumes the engine, returning graphs, density, analyzer and the
    /// probe (with everything it collected).
    pub fn into_parts(self) -> (Vec<RoutingGraph>, DensityMap, Sta, P) {
        (self.graphs, self.density, self.sta, self.probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::tests::same_row_net;
    use crate::graph::RoutingGraph;
    use bgr_timing::{DelayModel, Sta, WireParams};

    fn engine_for_same_row() -> Engine {
        let (circuit, placement, _net) = same_row_net();
        let graphs: Vec<RoutingGraph> = circuit
            .net_ids()
            .map(|n| RoutingGraph::build(&circuit, &placement, n, &[], 30.0))
            .collect();
        let sta = Sta::new(
            &circuit,
            vec![],
            DelayModel::Capacitance,
            WireParams::default(),
        )
        .unwrap();
        let partner = vec![None; circuit.nets().len()];
        let width = placement.width_pitches() as usize;
        Engine::new(graphs, sta, partner, placement.num_channels(), width)
    }

    #[test]
    fn initial_state_has_density_and_lengths() {
        let engine = engine_for_same_row();
        // Channel 0 and 1 both have trunk spans from net n1 plus branches
        // don't count; some density must exist.
        let total: i32 = (0..engine.density().num_channels())
            .map(|c| engine.density().c_max(bgr_layout::ChannelId::new(c)))
            .sum();
        assert!(total > 0);
        assert!(engine.sta().lengths().total_length_um() > 0.0);
    }

    #[test]
    fn run_deletion_reaches_all_trees() {
        let mut engine = engine_for_same_row();
        assert!(!engine.all_trees());
        let selections = engine.run_deletion(None, CriteriaOrder::DelayFirst);
        assert!(selections > 0);
        assert!(engine.all_trees());
        // After routing, every alive edge is a bridge: d_m == d_M.
        for g in engine.graphs() {
            for e in g.alive_edges() {
                assert!(g.is_bridge(e));
            }
        }
    }

    #[test]
    fn deletion_reduces_density_upper_bound() {
        let mut engine = engine_for_same_row();
        let before: i32 = (0..engine.density().num_channels())
            .map(|c| engine.density().c_max(bgr_layout::ChannelId::new(c)))
            .sum();
        engine.run_deletion(None, CriteriaOrder::DelayFirst);
        let after: i32 = (0..engine.density().num_channels())
            .map(|c| engine.density().c_max(bgr_layout::ChannelId::new(c)))
            .sum();
        assert!(after <= before);
    }

    #[test]
    fn reroute_restores_and_resolves() {
        let mut engine = engine_for_same_row();
        engine.run_deletion(None, CriteriaOrder::DelayFirst);
        let len_before = engine.sta().lengths().total_length_um();
        engine.reroute_net(bgr_netlist::NetId::new(1), CriteriaOrder::AreaFirst);
        assert!(engine.all_trees());
        // Deterministic graphs: rerouting an optimal tree keeps length.
        let len_after = engine.sta().lengths().total_length_um();
        assert!((len_before - len_after).abs() < 1e-6);
    }

    #[test]
    fn deletion_count_includes_prunes() {
        let mut engine = engine_for_same_row();
        engine.run_deletion(None, CriteriaOrder::DelayFirst);
        assert!(engine.deletions > 0);
    }

    #[test]
    fn scoreboard_matches_full_rescan_sequence() {
        let mut fast = engine_for_same_row();
        let mut oracle = engine_for_same_row();
        oracle.set_selection(SelectionStrategy::FullRescan);
        let s1 = fast.run_deletion(None, CriteriaOrder::DelayFirst);
        let s2 = oracle.run_deletion(None, CriteriaOrder::DelayFirst);
        assert_eq!(s1, s2);
        assert_eq!(fast.selection_log, oracle.selection_log);
        for (gf, go) in fast.graphs().iter().zip(oracle.graphs()) {
            assert_eq!(gf.alive_mask(), go.alive_mask());
        }
    }

    #[test]
    fn scoreboard_matches_oracle_through_reroutes() {
        let mut fast = engine_for_same_row();
        let mut oracle = engine_for_same_row();
        oracle.set_selection(SelectionStrategy::FullRescan);
        for engine in [&mut fast, &mut oracle] {
            engine.run_deletion(None, CriteriaOrder::DelayFirst);
            engine.reroute_net(bgr_netlist::NetId::new(1), CriteriaOrder::AreaFirst);
            engine.reroute_net(bgr_netlist::NetId::new(0), CriteriaOrder::DelayFirst);
        }
        assert_eq!(fast.selection_log, oracle.selection_log);
        assert_eq!(fast.deletions, oracle.deletions);
    }
}
