//! The deletion engine: global state and the `select_edge` /
//! `delete_and_modify` loop of Fig. 2 (lines 04–07).
//!
//! One [`Engine`] owns every net's routing graph, the channel-density
//! map, and the incremental timing analyzer. Each iteration scans the
//! deletable (non-bridge) edges of every in-scope net, ranks them with
//! [`crate::select::compare`], deletes the winner, and updates bridges,
//! densities, tentative lengths and margins — so the wiring of all nets
//! is determined *concurrently*, as the paper emphasizes.
//!
//! Per-edge *hypothetical wire states* (tentative-tree length assuming the
//! edge's deletion) are cached and invalidated only when the owning net's
//! graph changes; margins and longest paths are always read live from the
//! analyzer, so cached entries never go stale.

use bgr_netlist::NetId;
use bgr_timing::Sta;

use crate::config::CriteriaOrder;
use crate::criteria::{DelayCriteria, HypWire};
use crate::density::DensityMap;
use crate::graph::{REdgeKind, RoutingGraph};
use crate::select::{compare, EdgeKey};
use crate::tentative::tentative_length_um;

/// Mutable routing state shared by the initial-routing and improvement
/// phases.
#[derive(Debug)]
pub struct Engine {
    graphs: Vec<RoutingGraph>,
    density: DensityMap,
    sta: Sta,
    hyp: Vec<Vec<Option<HypWire>>>,
    partner: Vec<Option<NetId>>,
    /// Total edges deleted (selected + cascaded + pruned).
    pub deletions: usize,
    /// Total nets ripped up and rerouted.
    pub reroutes: usize,
}

impl Engine {
    /// Creates the engine over freshly built routing graphs.
    ///
    /// `partner[net]` marks differential-pair lockstep partners whose
    /// graphs have been verified homogeneous (§4.1); deletions cascade to
    /// them.
    pub fn new(
        mut graphs: Vec<RoutingGraph>,
        sta: Sta,
        partner: Vec<Option<NetId>>,
        num_channels: usize,
        chip_width: usize,
    ) -> Self {
        let mut density = DensityMap::new(num_channels, chip_width);
        for g in &mut graphs {
            g.prune_dangling();
            g.recompute_bridges();
        }
        for g in &graphs {
            let w = g.width() as i32;
            for e in g.alive_edges() {
                let edge = &g.edges()[e as usize];
                if let REdgeKind::Trunk { channel } = edge.kind {
                    density.add_span(channel, edge.x1, edge.x2, w, g.is_bridge(e));
                }
            }
        }
        let hyp = graphs
            .iter()
            .map(|g| vec![None; g.edges().len()])
            .collect();
        let mut engine = Self {
            graphs,
            density,
            sta,
            hyp,
            partner,
            deletions: 0,
            reroutes: 0,
        };
        for i in 0..engine.graphs.len() {
            engine.refresh_length(NetId::new(i));
        }
        engine
    }

    /// The routing graphs, indexed by net.
    pub fn graphs(&self) -> &[RoutingGraph] {
        &self.graphs
    }

    /// The density map.
    pub fn density_mut(&mut self) -> &mut DensityMap {
        &mut self.density
    }

    /// The timing analyzer.
    pub fn sta(&self) -> &Sta {
        &self.sta
    }

    /// Lockstep partner of a net, if any.
    pub fn partner(&self, net: NetId) -> Option<NetId> {
        self.partner[net.index()]
    }

    fn refresh_length(&mut self, net: NetId) {
        let len = tentative_length_um(&self.graphs[net.index()], None)
            .expect("net graphs stay connected");
        self.sta.set_net_length(net, len);
    }

    /// Hypothetical wire state if `e` of `net` were deleted (cached).
    fn hyp_for(&mut self, net: NetId, e: u32) -> HypWire {
        if let Some(h) = self.hyp[net.index()][e as usize] {
            return h;
        }
        let len = tentative_length_um(&self.graphs[net.index()], Some(e))
            .expect("deleting a non-bridge keeps the net connected");
        let (cl_ff, rc_ps) = self.sta.lengths().wire_terms_at(net, len);
        let h = HypWire {
            length_um: len,
            cl_ff,
            rc_ps,
        };
        self.hyp[net.index()][e as usize] = Some(h);
        h
    }

    /// Builds the full comparison key for a deletable edge.
    pub fn edge_key(&mut self, net: NetId, e: u32) -> EdgeKey {
        let delay = if self.sta.constraints_of_net(net).is_empty() {
            DelayCriteria::default()
        } else {
            let hyp = self.hyp_for(net, e);
            DelayCriteria::evaluate(&self.sta, net, &hyp)
        };
        let g = &self.graphs[net.index()];
        let edge = g.edges()[e as usize];
        let (is_trunk, f_min, n_min, f_max, n_max) = match edge.kind {
            REdgeKind::Trunk { channel } => {
                let ed = self.density.edge_density(channel, edge.x1, edge.x2);
                (
                    true,
                    self.density.c_min(channel) - ed.d_min,
                    self.density.nc_min(channel) - ed.nd_min,
                    self.density.c_max(channel) - ed.d_max,
                    self.density.nc_max(channel) - ed.nd_max,
                )
            }
            REdgeKind::Branch { channel } => (
                false,
                self.density.c_min(channel),
                self.density.nc_min(channel),
                self.density.c_max(channel),
                self.density.nc_max(channel),
            ),
            REdgeKind::FeedHalf { .. } => (false, 0, 0, 0, 0),
        };
        EdgeKey {
            delay,
            is_trunk,
            f_min,
            n_min,
            f_max,
            n_max,
            len_um: edge.len_um,
            net,
            edge: e,
        }
    }

    fn remove_density(&mut self, net: NetId, e: u32) {
        let g = &self.graphs[net.index()];
        let edge = g.edges()[e as usize];
        if let REdgeKind::Trunk { channel } = edge.kind {
            self.density
                .remove_span(channel, edge.x1, edge.x2, g.width() as i32, g.is_bridge(e));
        }
    }

    /// Deletes one edge of one net and restores every invariant: density
    /// spans, pruned dangling chains, bridge flags (with `d_m`
    /// promotions), the net's tentative length / margins, and the net's
    /// hypothesis cache.
    ///
    /// # Panics
    ///
    /// Panics if the edge is dead or a bridge.
    pub fn delete_one(&mut self, net: NetId, e: u32) {
        let ni = net.index();
        assert!(self.graphs[ni].is_alive(e), "edge already dead");
        assert!(!self.graphs[ni].is_bridge(e), "refusing to delete a bridge");
        self.remove_density(net, e);
        self.graphs[ni].delete_edge(e);
        self.deletions += 1;
        let pruned = self.graphs[ni].prune_dangling();
        self.deletions += pruned.len();
        for pe in pruned {
            // Density removal uses the stale bridge flag, which is exactly
            // the status the span was added/promoted under.
            let g = &self.graphs[ni];
            let edge = g.edges()[pe as usize];
            if let REdgeKind::Trunk { channel } = edge.kind {
                self.density.remove_span(
                    channel,
                    edge.x1,
                    edge.x2,
                    g.width() as i32,
                    g.is_bridge(pe),
                );
            }
        }
        let old_bridge: Vec<bool> = (0..self.graphs[ni].edges().len() as u32)
            .map(|i| self.graphs[ni].is_bridge(i))
            .collect();
        self.graphs[ni].recompute_bridges();
        for i in 0..self.graphs[ni].edges().len() as u32 {
            let g = &self.graphs[ni];
            if g.is_alive(i) && !old_bridge[i as usize] && g.is_bridge(i) {
                let edge = g.edges()[i as usize];
                if let REdgeKind::Trunk { channel } = edge.kind {
                    self.density
                        .promote_span(channel, edge.x1, edge.x2, g.width() as i32);
                }
            }
        }
        self.refresh_length(net);
        self.hyp[ni].iter_mut().for_each(|h| *h = None);
    }

    /// Deletes an edge and cascades to the differential partner (§4.1):
    /// the homogeneous partner graph deletes the same edge index when it
    /// is still deletable there.
    pub fn delete_with_partner(&mut self, net: NetId, e: u32) {
        self.delete_one(net, e);
        if let Some(p) = self.partner[net.index()] {
            let pg = &self.graphs[p.index()];
            if pg.is_alive(e) && !pg.is_bridge(e) {
                self.delete_one(p, e);
            }
        }
    }

    /// Runs the deletion loop over `scope` (all nets when `None`) until no
    /// in-scope non-bridge edge remains. Returns the number of selections.
    pub fn run_deletion(&mut self, scope: Option<&[NetId]>, order: CriteriaOrder) -> usize {
        let nets: Vec<NetId> = match scope {
            Some(s) => s.to_vec(),
            None => (0..self.graphs.len()).map(NetId::new).collect(),
        };
        let mut selections = 0;
        loop {
            let mut best: Option<EdgeKey> = None;
            for &net in &nets {
                let ecount = self.graphs[net.index()].edges().len() as u32;
                for e in 0..ecount {
                    let g = &self.graphs[net.index()];
                    if !g.is_alive(e) || g.is_bridge(e) {
                        continue;
                    }
                    let key = self.edge_key(net, e);
                    let better = match &best {
                        None => true,
                        Some(b) => compare(&key, b, order) == std::cmp::Ordering::Less,
                    };
                    if better {
                        best = Some(key);
                    }
                }
            }
            let Some(key) = best else { break };
            self.delete_with_partner(key.net, key.edge);
            selections += 1;
        }
        selections
    }

    /// Rips up a net (and its lockstep partner) and reroutes it with the
    /// given criteria order (§3.5 improvement phases).
    pub fn reroute_net(&mut self, net: NetId, order: CriteriaOrder) {
        let mut scope = vec![net];
        if let Some(p) = self.partner[net.index()] {
            scope.push(p);
        }
        for &n in &scope {
            let ni = n.index();
            // Remove the current (tree) density contribution.
            for e in 0..self.graphs[ni].edges().len() as u32 {
                if self.graphs[ni].is_alive(e) {
                    let g = &self.graphs[ni];
                    let edge = g.edges()[e as usize];
                    if let REdgeKind::Trunk { channel } = edge.kind {
                        self.density.remove_span(
                            channel,
                            edge.x1,
                            edge.x2,
                            g.width() as i32,
                            g.is_bridge(e),
                        );
                    }
                }
            }
            self.graphs[ni].restore_all();
            self.graphs[ni].prune_dangling();
            self.graphs[ni].recompute_bridges();
            for e in 0..self.graphs[ni].edges().len() as u32 {
                let g = &self.graphs[ni];
                if g.is_alive(e) {
                    let edge = g.edges()[e as usize];
                    if let REdgeKind::Trunk { channel } = edge.kind {
                        self.density
                            .add_span(channel, edge.x1, edge.x2, g.width() as i32, g.is_bridge(e));
                    }
                }
            }
            self.hyp[ni].iter_mut().for_each(|h| *h = None);
            self.refresh_length(n);
            self.reroutes += 1;
        }
        self.run_deletion(Some(&scope), order);
    }

    /// Captures the alive-edge masks of a net and its partner, for
    /// revertible rerouting.
    pub fn snapshot(&self, net: NetId) -> Vec<(NetId, Vec<bool>)> {
        let mut out = vec![(net, self.graphs[net.index()].alive_mask())];
        if let Some(p) = self.partner[net.index()] {
            out.push((p, self.graphs[p.index()].alive_mask()));
        }
        out
    }

    /// Restores a snapshot taken with [`Engine::snapshot`], rebuilding
    /// density spans, lengths, margins and caches.
    pub fn restore(&mut self, snapshot: &[(NetId, Vec<bool>)]) {
        for (net, mask) in snapshot {
            let ni = net.index();
            // Remove current density contribution.
            for e in 0..self.graphs[ni].edges().len() as u32 {
                if self.graphs[ni].is_alive(e) {
                    let g = &self.graphs[ni];
                    let edge = g.edges()[e as usize];
                    if let REdgeKind::Trunk { channel } = edge.kind {
                        self.density.remove_span(
                            channel,
                            edge.x1,
                            edge.x2,
                            g.width() as i32,
                            g.is_bridge(e),
                        );
                    }
                }
            }
            self.graphs[ni].set_alive_mask(mask);
            for e in 0..self.graphs[ni].edges().len() as u32 {
                let g = &self.graphs[ni];
                if g.is_alive(e) {
                    let edge = g.edges()[e as usize];
                    if let REdgeKind::Trunk { channel } = edge.kind {
                        self.density.add_span(
                            channel,
                            edge.x1,
                            edge.x2,
                            g.width() as i32,
                            g.is_bridge(e),
                        );
                    }
                }
            }
            self.hyp[ni].iter_mut().for_each(|h| *h = None);
            self.refresh_length(*net);
        }
    }

    /// Whether every net's graph is now a spanning tree.
    pub fn all_trees(&self) -> bool {
        self.graphs.iter().all(|g| g.is_tree())
    }

    /// Consumes the engine, returning graphs, density and analyzer.
    pub fn into_parts(self) -> (Vec<RoutingGraph>, DensityMap, Sta) {
        (self.graphs, self.density, self.sta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::tests::same_row_net;
    use crate::graph::RoutingGraph;
    use bgr_timing::{DelayModel, Sta, WireParams};

    fn engine_for_same_row() -> Engine {
        let (circuit, placement, _net) = same_row_net();
        let graphs: Vec<RoutingGraph> = circuit
            .net_ids()
            .map(|n| RoutingGraph::build(&circuit, &placement, n, &[], 30.0))
            .collect();
        let sta = Sta::new(&circuit, vec![], DelayModel::Capacitance, WireParams::default())
            .unwrap();
        let partner = vec![None; circuit.nets().len()];
        let width = placement.width_pitches() as usize;
        Engine::new(graphs, sta, partner, placement.num_channels(), width)
    }

    #[test]
    fn initial_state_has_density_and_lengths() {
        let mut engine = engine_for_same_row();
        // Channel 0 and 1 both have trunk spans from net n1 plus branches
        // don't count; some density must exist.
        let total: i32 = (0..engine.density_mut().num_channels())
            .map(|c| engine.density_mut().c_max(bgr_layout::ChannelId::new(c)))
            .sum();
        assert!(total > 0);
        assert!(engine.sta().lengths().total_length_um() > 0.0);
    }

    #[test]
    fn run_deletion_reaches_all_trees() {
        let mut engine = engine_for_same_row();
        assert!(!engine.all_trees());
        let selections = engine.run_deletion(None, CriteriaOrder::DelayFirst);
        assert!(selections > 0);
        assert!(engine.all_trees());
        // After routing, every alive edge is a bridge: d_m == d_M.
        for g in engine.graphs() {
            for e in g.alive_edges() {
                assert!(g.is_bridge(e));
            }
        }
    }

    #[test]
    fn deletion_reduces_density_upper_bound() {
        let mut engine = engine_for_same_row();
        let before: i32 = (0..engine.density_mut().num_channels())
            .map(|c| engine.density_mut().c_max(bgr_layout::ChannelId::new(c)))
            .sum();
        engine.run_deletion(None, CriteriaOrder::DelayFirst);
        let after: i32 = (0..engine.density_mut().num_channels())
            .map(|c| engine.density_mut().c_max(bgr_layout::ChannelId::new(c)))
            .sum();
        assert!(after <= before);
    }

    #[test]
    fn reroute_restores_and_resolves() {
        let mut engine = engine_for_same_row();
        engine.run_deletion(None, CriteriaOrder::DelayFirst);
        let len_before = engine.sta().lengths().total_length_um();
        engine.reroute_net(bgr_netlist::NetId::new(1), CriteriaOrder::AreaFirst);
        assert!(engine.all_trees());
        // Deterministic graphs: rerouting an optimal tree keeps length.
        let len_after = engine.sta().lengths().total_length_um();
        assert!((len_before - len_after).abs() < 1e-6);
    }

    #[test]
    fn deletion_count_includes_prunes() {
        let mut engine = engine_for_same_row();
        engine.run_deletion(None, CriteriaOrder::DelayFirst);
        assert!(engine.deletions > 0);
    }
}
