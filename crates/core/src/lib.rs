//! The Harada–Kitazawa timing- and area-optimizing global router
//! (DAC 1994) — the paper's primary contribution.
//!
//! The router follows the ten-line outline of the paper's Fig. 2:
//!
//! ```text
//! 01  xpin & feedthrough assignment           (assign, feedcell)
//! 02  build routing graphs G_r(n)             (graph)
//! 03  build delay constraint graphs G_d(P)    (bgr-timing)
//! 04  N_b = non-bridge edges
//! 05  while N_b ≠ ∅:
//! 06      e = select_edge(N_b)                (criteria, select)
//! 07      delete_and_modify(e)                (engine, density)
//! 08  recover_violate()                       (improve)
//! 09  improve_delay()                         (improve)
//! 10  improve_area()                          (improve)
//! ```
//!
//! Interconnection wiring of *all nets is determined concurrently*: every
//! iteration picks the globally worst deletable edge across every net's
//! routing graph, ranked by the delay criteria `C_d / Gl / LD` derived
//! from local margins `LM(e, P)` (Eq. 2) and the channel-density criteria
//! of §3.3/Fig. 4. Bipolar-specific features — differential drive pairs,
//! multi-pitch wires and feed-cell insertion — are integrated as in §4.
//!
//! # Example
//!
//! Route a tiny circuit and inspect the result:
//!
//! ```
//! use bgr_core::{GlobalRouter, RouterConfig};
//! use bgr_layout::{Geometry, PlacementBuilder};
//! use bgr_netlist::{CellLibrary, CircuitBuilder};
//!
//! let lib = CellLibrary::ecl();
//! let inv = lib.kind_by_name("INV").unwrap();
//! let mut cb = CircuitBuilder::new(lib);
//! let a = cb.add_input_pad("a");
//! let y = cb.add_output_pad("y");
//! let u = cb.add_cell("u", inv);
//! cb.add_net("n1", cb.pad_term(a), [cb.cell_term(u, "A")?])?;
//! cb.add_net("n2", cb.cell_term(u, "Y")?, [cb.pad_term(y)])?;
//! let circuit = cb.finish()?;
//!
//! let mut pb = PlacementBuilder::new(Geometry::default(), 1);
//! pb.append_with_width(0, bgr_netlist::CellId::new(0), 3);
//! pb.place_pad_bottom(a, 0);
//! pb.place_pad_top(y, 2);
//! let placement = pb.finish(&circuit)?;
//!
//! let routed = GlobalRouter::new(RouterConfig::default())
//!     .route(circuit, placement, vec![])?;
//! assert_eq!(routed.result.trees.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod assign;
pub mod baseline;
pub mod config;
pub mod criteria;
pub mod density;
pub mod diffpair;
pub mod engine;
pub mod error;
pub mod feedcell;
pub mod graph;
pub mod improve;
pub mod par;
pub mod probe;
pub mod report;
pub mod result;
pub mod router;
pub mod scoreboard;
pub mod select;
pub mod session;
pub mod shard;
pub mod tentative;

pub use baseline::{SequentialConfig, SequentialRouter};
pub use config::{
    Budgets, CriteriaOrder, OnViolation, RouterConfig, SelectionStrategy, VerifyLevel,
};
pub use error::RouteError;
pub use graph::{REdge, REdgeKind, RVert, RVertKind, RoutingGraph};
pub use improve::{PhaseLimits, PhaseOutcome};
pub use probe::{
    CollectingProbe, Corruption, Counter, Fault, FaultProbe, Hist, NoopProbe, Phase, PhaseSpan,
    Probe, ProfileEntry, ProfileTree, ProfilingProbe, RekeyCause, RekeyCauses, RouteTrace, Scope,
    TraceEvent, FAULT_MARKER, HIST_BUCKETS,
};
pub use report::{ChannelCongestion, CongestionReport, TraceSummary};
pub use result::{
    NetTree, RouteStats, RoutingResult, Segment, TimingReport, ViolationEntry, ViolationReport,
};
pub use router::{GlobalRouter, Routed};
pub use select::{deciding_tier, DecidingTier};
pub use session::{
    EngineSnapshot, RouteSession, SessionStage, SnapshotStats, StepOutcome, SNAPSHOT_VERSION,
};
pub use shard::ShardMap;
