//! Routing results: net trees, density profile, timing report, stats.

use bgr_layout::ChannelId;
use bgr_netlist::{Circuit, NetId, TermId};
use bgr_timing::{DelayModel, PathConstraint, Sta, TimingError, WireParams};

use crate::graph::{REdgeKind, RVertKind, RoutingGraph};

/// One wiring piece of a routed net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Segment {
    /// Horizontal channel wiring over `[x1, x2]`.
    Trunk {
        /// Channel.
        channel: ChannelId,
        /// Left end (pitches).
        x1: i32,
        /// Right end (pitches).
        x2: i32,
    },
    /// Vertical pin tap at `x` in `channel`.
    Branch {
        /// Channel.
        channel: ChannelId,
        /// Column (pitches).
        x: i32,
        /// The tapped terminal.
        term: TermId,
    },
    /// Row crossing at `x` through `row`.
    Feed {
        /// Crossed row.
        row: u32,
        /// Column (pitches).
        x: i32,
    },
}

/// The routed tree of one net.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetTree {
    /// Wiring pieces.
    pub segments: Vec<Segment>,
    /// Total length in µm.
    pub length_um: f64,
    /// Wire width in pitches.
    pub width_pitches: u32,
    /// Driver-to-terminal wire distances (µm), driver first with 0.
    pub terminal_dists_um: Vec<(TermId, f64)>,
}

impl NetTree {
    /// Extracts the tree from a routed (tree-state) graph.
    pub fn from_graph(graph: &RoutingGraph) -> Self {
        let mut segments = Vec::new();
        let mut feeds_seen: Vec<(u32, i32)> = Vec::new();
        for e in graph.alive_edges() {
            let edge = &graph.edges()[e as usize];
            match edge.kind {
                REdgeKind::Trunk { channel } => segments.push(Segment::Trunk {
                    channel,
                    x1: edge.x1,
                    x2: edge.x2,
                }),
                REdgeKind::Branch { channel } => {
                    let term = [edge.a, edge.b]
                        .into_iter()
                        .find_map(|v| match graph.verts()[v as usize].kind {
                            RVertKind::Terminal(t) | RVertKind::TermTap { term: t, .. } => Some(t),
                            _ => None,
                        })
                        .expect("branch edges touch a terminal");
                    segments.push(Segment::Branch {
                        channel,
                        x: edge.x1,
                        term,
                    });
                }
                REdgeKind::FeedHalf { row } => {
                    if !feeds_seen.contains(&(row, edge.x1)) {
                        feeds_seen.push((row, edge.x1));
                        segments.push(Segment::Feed { row, x: edge.x1 });
                    }
                }
            }
        }
        Self {
            segments,
            length_um: graph.alive_length_um(),
            width_pitches: graph.width(),
            terminal_dists_um: graph.terminal_distances_um(),
        }
    }

    /// Wire-length skew across the net's sinks: `max − min` of the
    /// driver-to-sink distances, in µm (0 for single-sink nets). The
    /// spread that §4.2's multi-pitch clock wires exist to keep from
    /// turning into delay skew.
    pub fn length_skew_um(&self) -> f64 {
        let sinks: Vec<f64> = self
            .terminal_dists_um
            .iter()
            .filter(|&&(_, d)| d > 0.0)
            .map(|&(_, d)| d)
            .collect();
        if sinks.len() < 2 {
            return 0.0;
        }
        let max = sinks.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = sinks.iter().copied().fold(f64::INFINITY, f64::min);
        max - min
    }

    /// Trunk spans of this tree within `channel`, as `(x1, x2, width)`.
    pub fn trunks_in_channel(&self, channel: ChannelId) -> Vec<(i32, i32, u32)> {
        self.segments
            .iter()
            .filter_map(|s| match *s {
                Segment::Trunk { channel: c, x1, x2 } if c == channel => {
                    Some((x1, x2, self.width_pitches))
                }
                _ => None,
            })
            .collect()
    }
}

/// Timing of one constraint in the final layout.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintTiming {
    /// Constraint name.
    pub name: String,
    /// Limit `τ_P` in ps.
    pub limit_ps: f64,
    /// Critical path arrival in ps.
    pub arrival_ps: f64,
    /// Margin `M(P)` in ps.
    pub margin_ps: f64,
}

/// Timing evaluation of a finished layout against a constraint set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimingReport {
    /// Per-constraint results.
    pub constraints: Vec<ConstraintTiming>,
}

impl TimingReport {
    /// Evaluates `constraints` on a circuit whose nets have the given
    /// routed lengths (µm, indexed by net).
    ///
    /// # Errors
    ///
    /// Propagates constraint-graph construction failures.
    pub fn evaluate(
        circuit: &Circuit,
        constraints: &[PathConstraint],
        model: DelayModel,
        wire: WireParams,
        lengths_um: &[f64],
    ) -> Result<Self, TimingError> {
        let mut sta = Sta::new(circuit, constraints.to_vec(), model, wire)?;
        for (i, &len) in lengths_um.iter().enumerate() {
            sta.set_net_length(NetId::new(i), len);
        }
        let constraints = (0..sta.num_constraints())
            .map(|cid| ConstraintTiming {
                name: sta.constraint(cid).constraint().name.clone(),
                limit_ps: sta.constraint(cid).constraint().limit_ps,
                arrival_ps: sta.arrival_ps(cid),
                margin_ps: sta.margin_ps(cid),
            })
            .collect();
        Ok(Self { constraints })
    }

    /// The largest arrival over all constraints (the paper's reported
    /// "Delay"), or 0 with no constraints.
    pub fn max_arrival_ps(&self) -> f64 {
        self.constraints
            .iter()
            .map(|c| c.arrival_ps)
            .fold(0.0, f64::max)
    }

    /// The worst margin, or `+∞` with no constraints.
    pub fn worst_margin_ps(&self) -> f64 {
        self.constraints
            .iter()
            .map(|c| c.margin_ps)
            .fold(f64::INFINITY, f64::min)
    }

    /// Number of violated constraints.
    pub fn violations(&self) -> usize {
        self.constraints
            .iter()
            .filter(|c| c.margin_ps < 0.0)
            .count()
    }
}

/// Residual state of one violated constraint after recovery gave up.
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationEntry {
    /// Constraint name.
    pub name: String,
    /// Limit `τ_P` in ps.
    pub limit_ps: f64,
    /// Critical-path arrival in ps.
    pub arrival_ps: f64,
    /// Residual violation in ps (`arrival − limit`, always > 0 here).
    pub violation_ps: f64,
    /// Nets on the constraint's residual critical path, the set a later
    /// pass (or a human) would attack first.
    pub critical_nets: Vec<NetId>,
}

/// Structured account of why §3.5 phase-1 recovery stopped short: which
/// constraints still miss their limits, by how much, and how much work
/// the recovery phase spent before giving up.
///
/// Produced when [`crate::config::OnViolation::BestEffort`] lets a route
/// finish with residual violations; carried by
/// [`crate::RouteError::ConstraintsUnsatisfied`] when
/// [`crate::config::OnViolation::Fail`] turns the same state into an
/// error — the two modes report the identical facts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ViolationReport {
    /// Per violated constraint, in constraint order.
    pub entries: Vec<ViolationEntry>,
    /// Recovery reroutes spent before exhaustion (§3.5 phase 1).
    pub recovery_reroutes: usize,
    /// Recovery passes actually run (≤ `RouterConfig::recover_passes`).
    pub recovery_passes: usize,
}

impl ViolationReport {
    /// Total residual violation over all entries, in ps.
    pub fn total_violation_ps(&self) -> f64 {
        self.entries.iter().map(|e| e.violation_ps).sum()
    }

    /// Whether any residual violation remains.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Extracts the report from the analyzer state after the improvement
    /// phases: one entry per constraint with a negative margin.
    pub fn from_sta(sta: &Sta, recovery_reroutes: usize, recovery_passes: usize) -> Self {
        let entries = (0..sta.num_constraints())
            .filter(|&cid| sta.margin_ps(cid) < 0.0)
            .map(|cid| {
                let c = sta.constraint(cid).constraint();
                ViolationEntry {
                    name: c.name.clone(),
                    limit_ps: c.limit_ps,
                    arrival_ps: sta.arrival_ps(cid),
                    violation_ps: -sta.margin_ps(cid),
                    critical_nets: sta.critical_nets(cid),
                }
            })
            .collect();
        Self {
            entries,
            recovery_reroutes,
            recovery_passes,
        }
    }
}

impl std::fmt::Display for ViolationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} constraint(s) violated by {:.1} ps total after {} recovery reroutes",
            self.entries.len(),
            self.total_violation_ps(),
            self.recovery_reroutes
        )
    }
}

/// Router work counters and phase durations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RouteStats {
    /// Edges deleted (selected + cascaded + pruned).
    pub deletions: usize,
    /// Nets ripped up and rerouted across improvement phases.
    pub reroutes: usize,
    /// Feed cells inserted (§4.3).
    pub feed_cells_inserted: usize,
    /// Chip widening in pitches due to feed-cell insertion.
    pub widened_pitches: i32,
    /// Differential pairs routed in lockstep.
    pub diff_pairs_locked: usize,
    /// Differential pairs whose graphs were not homogeneous (routed
    /// independently).
    pub diff_pairs_independent: usize,
    /// Every `(net, edge)` selection made by the deletion loop, in
    /// order, across initial routing and every improvement reroute —
    /// the determinism audit trail compared between
    /// [`crate::SelectionStrategy`] variants by the oracle tests.
    pub selection_log: Vec<(bgr_netlist::NetId, u32)>,
    /// Scoreboard diagnostic: nets re-keyed per typed
    /// [`RekeyCause`](crate::probe::RekeyCause). All zero under the
    /// full-rescan strategy.
    pub rekey_causes: crate::probe::RekeyCauses,
    /// Engine self-audits passed (`RouterConfig::verify` levels above
    /// `Off`; each rebuilt the density profile and every net length
    /// from scratch and found the incremental state consistent).
    pub audits_passed: u64,
    /// Total comparisons performed across the passed self-audits.
    pub audit_checks: u64,
    /// Wall-clock of initial routing.
    pub initial_routing: std::time::Duration,
    /// Wall-clock of the three improvement phases.
    pub improvement: std::time::Duration,
    /// Total route wall-clock.
    pub total: std::time::Duration,
}

/// The global-routing result.
#[derive(Debug, Clone)]
pub struct RoutingResult {
    /// Per-net routed trees.
    pub trees: Vec<NetTree>,
    /// Final per-channel density maxima (`C_M`) — the global-routing
    /// estimate of channel track counts.
    pub channel_tracks: Vec<i32>,
    /// Per-net routed lengths in µm.
    pub net_lengths_um: Vec<f64>,
    /// Total wire length in µm.
    pub total_length_um: f64,
    /// Timing vs the *requested* constraints (evaluated even when routing
    /// ran unconstrained).
    pub timing: TimingReport,
    /// Residual-violation account when best-effort degradation let the
    /// route finish despite exhausted recovery (`None` when recovery
    /// converged or routing ran unconstrained).
    pub violations: Option<ViolationReport>,
    /// Work counters.
    pub stats: RouteStats,
}

impl RoutingResult {
    /// Total wire length in mm (the paper's Table 2 unit).
    pub fn total_length_mm(&self) -> f64 {
        self.total_length_um / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::tests::same_row_net;

    #[test]
    fn tree_extraction_after_routing() {
        let (circuit, placement, net) = same_row_net();
        let mut g = RoutingGraph::build(&circuit, &placement, net, &[], 30.0);
        // Route by hand: kill the channel-1 trunk, prune.
        let trunk = g
            .alive_edges()
            .find(|&e| {
                g.edges()[e as usize].kind
                    == (REdgeKind::Trunk {
                        channel: ChannelId::new(1),
                    })
            })
            .unwrap();
        g.delete_edge(trunk);
        g.prune_dangling();
        g.recompute_bridges();
        let tree = NetTree::from_graph(&g);
        assert_eq!(tree.segments.len(), 3);
        let trunks = tree.trunks_in_channel(ChannelId::new(0));
        assert_eq!(trunks, vec![(2, 3, 1)]);
        assert!(tree.trunks_in_channel(ChannelId::new(1)).is_empty());
        assert!((tree.length_um - 68.0).abs() < 1e-9);
    }

    #[test]
    fn violation_report_extracts_residuals_from_sta() {
        use bgr_timing::{DelayModel, PathConstraint, Sta, WireParams};
        let (circuit, _, _) = same_row_net();
        let src = circuit.pads()[0].term();
        let snk = circuit.pads()[1].term();
        // Two INVs give 132.5 ps of pure gate delay; a 50 ps limit is
        // unmeetable no matter how the net is routed.
        let sta = Sta::new(
            &circuit,
            vec![PathConstraint::new("tight", src, snk, 50.0)],
            DelayModel::Capacitance,
            WireParams::default(),
        )
        .unwrap();
        let report = ViolationReport::from_sta(&sta, 7, 3);
        assert_eq!(report.entries.len(), 1);
        assert!(!report.is_empty());
        let e = &report.entries[0];
        assert_eq!(e.name, "tight");
        assert!((e.violation_ps - (e.arrival_ps - e.limit_ps)).abs() < 1e-9);
        assert!(e.violation_ps > 0.0);
        assert!(!e.critical_nets.is_empty());
        assert_eq!(report.recovery_reroutes, 7);
        assert_eq!(report.recovery_passes, 3);
        assert!(report.total_violation_ps() > 0.0);
        assert!(report.to_string().contains("violated"));
    }

    #[test]
    fn timing_report_evaluates_constraints() {
        use bgr_timing::PathConstraint;
        let (circuit, _, _) = same_row_net();
        let src = circuit.pads()[0].term();
        let snk = circuit.pads()[1].term();
        let lengths = vec![0.0; circuit.nets().len()];
        let report = TimingReport::evaluate(
            &circuit,
            &[PathConstraint::new("p", src, snk, 500.0)],
            DelayModel::Capacitance,
            WireParams::default(),
            &lengths,
        )
        .unwrap();
        assert_eq!(report.constraints.len(), 1);
        // Two INVs: 60 + 5*2.5 + 60 = 132.5 ps.
        assert!((report.max_arrival_ps() - 132.5).abs() < 1e-9);
        assert_eq!(report.violations(), 0);
        assert!((report.worst_margin_ps() - 367.5).abs() < 1e-9);
    }
}
