//! Channel-region sharding of the candidate pool.
//!
//! The scoreboard's re-key traffic is spatially local: a deletion
//! touches one or two channels, and the dirty nets it produces are the
//! nets *of those channels* (the `aggregate_moved` / `span_overlap`
//! clauses of the invalidation contract). A single global heap makes
//! every such batch pay `O(log total)` per push against the whole pool;
//! splitting the pool into **channel-region shards** — contiguous bands
//! of channels, each with its own heap — confines a batch to the shards
//! its channels map to, while selection runs a tournament over the
//! per-shard minima (see [`crate::scoreboard::Scoreboard`]).
//!
//! A [`ShardMap`] is the static net → shard assignment. Each net is
//! pinned to the shard of its **home channel** (the channel of its
//! first edge — where its trunk alternatives concentrate, since a
//! routing graph spans a handful of adjacent channels). The assignment
//! must be static: a net's champion entry has to land in the shard its
//! `invalidate_net` generation bump will be checked against, so a net
//! that moved between shards would leave immortal stale entries behind.
//! Any static assignment is *correct* — the tournament compares every
//! shard's minimum — sharding by home channel merely makes invalidation
//! traffic local.

use bgr_netlist::NetId;

/// Static net → shard assignment over `shards` channel-region shards.
///
/// Built once per `run_deletion`; see the [module docs](self) for why
/// the assignment must not change while a scoreboard is live.
#[derive(Debug, Clone)]
pub struct ShardMap {
    count: usize,
    net_shard: Vec<u32>,
}

impl ShardMap {
    /// The trivial single-shard map: every net in shard 0 (exactly the
    /// pre-sharding scoreboard).
    pub fn single(num_nets: usize) -> Self {
        Self {
            count: 1,
            net_shard: vec![0; num_nets],
        }
    }

    /// Maps each net to the shard of its home channel, splitting
    /// `num_channels` channels into at most `shards` contiguous bands
    /// of near-equal size. `shards` is clamped to `[1, num_channels]`;
    /// `home_channel[net]` is the net's home channel index.
    pub fn by_home_channel(shards: usize, num_channels: usize, home_channel: &[u32]) -> Self {
        let count = shards.clamp(1, num_channels.max(1));
        let net_shard = home_channel
            .iter()
            .map(|&c| {
                let band = (c as usize * count) / num_channels.max(1);
                band.min(count - 1) as u32
            })
            .collect();
        Self { count, net_shard }
    }

    /// Number of shards (at least 1).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Number of nets the map covers.
    pub fn num_nets(&self) -> usize {
        self.net_shard.len()
    }

    /// The shard holding `net`'s candidates.
    pub fn shard_of(&self, net: NetId) -> usize {
        self.net_shard[net.index()] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_maps_everything_to_shard_zero() {
        let m = ShardMap::single(5);
        assert_eq!(m.count(), 1);
        assert_eq!(m.num_nets(), 5);
        for i in 0..5 {
            assert_eq!(m.shard_of(NetId::new(i)), 0);
        }
    }

    #[test]
    fn home_channel_bands_are_contiguous_and_cover_all_shards() {
        // 8 channels, 4 shards: channels 0-1 -> 0, 2-3 -> 1, 4-5 -> 2, 6-7 -> 3.
        let homes: Vec<u32> = (0..8).collect();
        let m = ShardMap::by_home_channel(4, 8, &homes);
        assert_eq!(m.count(), 4);
        let got: Vec<usize> = (0..8).map(|i| m.shard_of(NetId::new(i))).collect();
        assert_eq!(got, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn shard_count_clamps_to_channel_count() {
        let homes = vec![0, 1, 2];
        let m = ShardMap::by_home_channel(16, 3, &homes);
        assert_eq!(m.count(), 3);
        // Monotone in the home channel, never out of range.
        let got: Vec<usize> = (0..3).map(|i| m.shard_of(NetId::new(i))).collect();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(ShardMap::by_home_channel(0, 3, &homes).count(), 1);
    }

    #[test]
    fn degenerate_channel_counts_stay_in_bounds() {
        // A pathological zero-channel chip still produces one shard.
        let m = ShardMap::by_home_channel(4, 0, &[]);
        assert_eq!(m.count(), 1);
        let homes = vec![0, 0];
        let m = ShardMap::by_home_channel(4, 1, &homes);
        assert_eq!(m.count(), 1);
        assert_eq!(m.shard_of(NetId::new(1)), 0);
    }
}
