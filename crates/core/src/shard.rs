//! Channel-region sharding of the candidate pool.
//!
//! The scoreboard keeps **one heap per channel** (plus one channelless
//! heap for feed-half candidates, which read no density at all), and
//! heap entries are *raw* keys — delay prefix plus the edge's own
//! density window, with the channel aggregates (`C_M`, `NC_M`, `C_m`,
//! `NC_m`) composed in only at pop time. Re-key traffic is spatially
//! local: a deletion touches one or two channels, so the dirty batch
//! lands in a handful of heaps. Splitting the heaps into **channel
//! shards** — contiguous bands of channels, each with a cached minimum —
//! lets selection skip every shard whose heaps received no fresh
//! entries since its cache was built, while the tournament compares the
//! per-shard cached minima (see [`crate::scoreboard::Scoreboard`]).
//!
//! A [`ShardMap`] is the static heap → shard assignment. It must be
//! static: a shard's cached minimum is invalidated through the shard
//! index its heaps map to, so a heap that moved between shards would
//! leave a stale cache behind. Any static assignment is *correct* — the
//! tournament compares every shard's minimum — banding adjacent
//! channels merely makes invalidation traffic local.

/// Static heap → shard assignment over `shards` channel-band shards.
///
/// Built once per `run_deletion`; see the [module docs](self) for why
/// the assignment must not change while a scoreboard is live.
#[derive(Debug, Clone)]
pub struct ShardMap {
    count: usize,
    heap_shard: Vec<u32>,
}

impl ShardMap {
    /// The trivial single-shard map: every heap in shard 0 (exactly the
    /// pre-sharding scoreboard).
    pub fn single(num_heaps: usize) -> Self {
        Self {
            count: 1,
            heap_shard: vec![0; num_heaps],
        }
    }

    /// Maps channel heap `c` to its channel band, splitting
    /// `num_channels` channels into at most `shards` contiguous bands
    /// of near-equal size, and the trailing channelless heap (index
    /// `num_channels`) to shard 0. `shards` is clamped to
    /// `[1, num_channels]`.
    pub fn by_channel_bands(shards: usize, num_channels: usize) -> Self {
        let count = shards.clamp(1, num_channels.max(1));
        let mut heap_shard: Vec<u32> = (0..num_channels)
            .map(|c| {
                let band = (c * count) / num_channels.max(1);
                band.min(count - 1) as u32
            })
            .collect();
        // The channelless heap rides with the first band.
        heap_shard.push(0);
        Self { count, heap_shard }
    }

    /// [`ShardMap::by_channel_bands`] balancing by per-channel *weight*
    /// (the live candidate population of each channel's heap, e.g. the
    /// number of nets with edges there) instead of by channel count
    /// alone: contiguous bands are cut so each shard carries a
    /// near-equal share of the total weight, keeping one hot channel
    /// from concentrating most re-key and rebuild traffic in a single
    /// shard.
    ///
    /// Deterministic in `weights`; a channel with weight 0 still lands
    /// in a band (bands stay contiguous and cover every channel). When
    /// every weight is 0 this degrades to the unweighted banding. The
    /// channelless heap (index `weights.len()`) rides with shard 0, as
    /// in the unweighted map.
    pub fn by_channel_bands_weighted(shards: usize, weights: &[usize]) -> Self {
        let num_channels = weights.len();
        let total: usize = weights.iter().sum();
        if total == 0 {
            return Self::by_channel_bands(shards, num_channels);
        }
        let count = shards.clamp(1, num_channels.max(1));
        // Band boundary rule: channel c joins band floor(prefix * count /
        // total) where prefix is the weight strictly before c — the
        // weighted analogue of (c * count) / num_channels. Monotone in
        // c, so bands are contiguous; clamped so trailing zero-weight
        // channels stay in range.
        let mut prefix = 0usize;
        let mut heap_shard: Vec<u32> = Vec::with_capacity(num_channels + 1);
        for &w in weights {
            let band = (prefix * count) / total;
            heap_shard.push(band.min(count - 1) as u32);
            prefix += w;
        }
        // The channelless heap rides with the first band.
        heap_shard.push(0);
        Self { count, heap_shard }
    }

    /// Number of shards (at least 1).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Number of heaps the map covers (channels + the channelless heap).
    pub fn num_heaps(&self) -> usize {
        self.heap_shard.len()
    }

    /// The shard holding heap `heap`'s candidates.
    pub fn shard_of_heap(&self, heap: usize) -> usize {
        self.heap_shard[heap] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_maps_everything_to_shard_zero() {
        let m = ShardMap::single(5);
        assert_eq!(m.count(), 1);
        assert_eq!(m.num_heaps(), 5);
        for h in 0..5 {
            assert_eq!(m.shard_of_heap(h), 0);
        }
    }

    #[test]
    fn channel_bands_are_contiguous_and_cover_all_shards() {
        // 8 channels, 4 shards: channels 0-1 -> 0, 2-3 -> 1, 4-5 -> 2,
        // 6-7 -> 3; the channelless heap (index 8) lands in shard 0.
        let m = ShardMap::by_channel_bands(4, 8);
        assert_eq!(m.count(), 4);
        assert_eq!(m.num_heaps(), 9);
        let got: Vec<usize> = (0..9).map(|h| m.shard_of_heap(h)).collect();
        assert_eq!(got, vec![0, 0, 1, 1, 2, 2, 3, 3, 0]);
    }

    #[test]
    fn shard_count_clamps_to_channel_count() {
        let m = ShardMap::by_channel_bands(16, 3);
        assert_eq!(m.count(), 3);
        // Monotone in the channel index, never out of range.
        let got: Vec<usize> = (0..3).map(|h| m.shard_of_heap(h)).collect();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(ShardMap::by_channel_bands(0, 3).count(), 1);
    }

    #[test]
    fn weighted_bands_balance_population_not_channel_count() {
        // One hot channel (weight 12) among light ones: unweighted
        // banding would pair it with a neighbor, weighted banding gives
        // it a shard of its own and spreads the rest.
        let m = ShardMap::by_channel_bands_weighted(4, &[12, 1, 1, 1, 1, 1, 1, 1]);
        assert_eq!(m.count(), 4);
        assert_eq!(m.num_heaps(), 9);
        let got: Vec<usize> = (0..9).map(|h| m.shard_of_heap(h)).collect();
        // prefix weights: 0,12,13,14,15,16,17,18 of total 19.
        assert_eq!(got, vec![0, 2, 2, 2, 3, 3, 3, 3, 0]);
        // Bands are contiguous (monotone shard index over channels).
        for w in got[..8].windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn weighted_bands_with_uniform_weights_match_unweighted() {
        let uniform = [3usize; 8];
        let w = ShardMap::by_channel_bands_weighted(4, &uniform);
        let u = ShardMap::by_channel_bands(4, 8);
        let got: Vec<usize> = (0..9).map(|h| w.shard_of_heap(h)).collect();
        let want: Vec<usize> = (0..9).map(|h| u.shard_of_heap(h)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn weighted_bands_degenerate_inputs_stay_in_bounds() {
        // All-zero weights fall back to unweighted banding.
        let m = ShardMap::by_channel_bands_weighted(4, &[0, 0, 0, 0]);
        assert_eq!(m.count(), 4);
        let got: Vec<usize> = (0..5).map(|h| m.shard_of_heap(h)).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 0]);
        // Zero channels: one shard holding the channelless heap.
        let m = ShardMap::by_channel_bands_weighted(4, &[]);
        assert_eq!(m.count(), 1);
        assert_eq!(m.num_heaps(), 1);
        assert_eq!(m.shard_of_heap(0), 0);
        // Trailing zero-weight channels never index out of range.
        let m = ShardMap::by_channel_bands_weighted(3, &[5, 0, 0]);
        assert_eq!(m.count(), 3);
        for h in 0..4 {
            assert!(m.shard_of_heap(h) < 3);
        }
    }

    #[test]
    fn degenerate_channel_counts_stay_in_bounds() {
        // A pathological zero-channel chip still produces one shard
        // holding the channelless heap.
        let m = ShardMap::by_channel_bands(4, 0);
        assert_eq!(m.count(), 1);
        assert_eq!(m.num_heaps(), 1);
        assert_eq!(m.shard_of_heap(0), 0);
        let m = ShardMap::by_channel_bands(4, 1);
        assert_eq!(m.count(), 1);
        assert_eq!(m.shard_of_heap(1), 0);
    }
}
