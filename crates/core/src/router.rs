//! The top-level router driver (Fig. 2).

use bgr_layout::Placement;
use bgr_netlist::Circuit;
use bgr_timing::PathConstraint;

use crate::config::RouterConfig;
use crate::error::RouteError;
use crate::probe::{
    CollectingProbe, NoopProbe, PhaseTracked, Probe, ProfileTree, ProfilingProbe, RouteTrace,
};
use crate::result::RoutingResult;
use crate::session::{RouteSession, StepOutcome};

/// The global router.
///
/// See the [crate docs](crate) for the algorithm outline and an example.
#[derive(Debug, Clone, Default)]
pub struct GlobalRouter {
    config: RouterConfig,
}

/// Everything a route produces. The circuit and placement are returned
/// because feed-cell insertion (§4.3) may have extended them.
#[derive(Debug, Clone)]
pub struct Routed {
    /// The circuit (possibly with inserted feed cells).
    pub circuit: Circuit,
    /// The placement (possibly widened).
    pub placement: Placement,
    /// The routing result.
    pub result: RoutingResult,
}

impl GlobalRouter {
    /// Creates a router with the given configuration.
    pub fn new(config: RouterConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Routes a placed circuit under the given path constraints.
    ///
    /// When `config.use_constraints` is `false`, routing itself ignores
    /// the constraints (pure area mode) but the returned timing report
    /// still evaluates them, enabling the paper's Table 2 comparison.
    ///
    /// # Errors
    ///
    /// Returns an error if the inputs fail validation, a constraint is
    /// unreachable, or a net cannot be connected even after feed-cell
    /// insertion.
    pub fn route(
        &self,
        circuit: Circuit,
        placement: Placement,
        constraints: Vec<PathConstraint>,
    ) -> Result<Routed, RouteError> {
        self.route_with_probe(circuit, placement, constraints, NoopProbe)
            .map(|(routed, _)| routed)
    }

    /// [`GlobalRouter::route`] observed by a [`CollectingProbe`]; returns
    /// the route alongside its [`RouteTrace`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`GlobalRouter::route`].
    pub fn route_traced(
        &self,
        circuit: Circuit,
        placement: Placement,
        constraints: Vec<PathConstraint>,
    ) -> Result<(Routed, RouteTrace), RouteError> {
        self.route_with_probe(circuit, placement, constraints, CollectingProbe::new())
            .map(|(routed, probe)| (routed, probe.finish()))
    }

    /// [`GlobalRouter::route`] observed by a [`ProfilingProbe`]: the
    /// full [`RouteTrace`] plus an aggregated phase/scope
    /// [`ProfileTree`] with per-[`crate::probe::RekeyCause`] re-key
    /// time attribution. Deterministic observables are identical to a
    /// [`GlobalRouter::route_traced`] run; profiling only adds
    /// probe-side wall-clock aggregation.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`GlobalRouter::route`].
    pub fn route_profiled(
        &self,
        circuit: Circuit,
        placement: Placement,
        constraints: Vec<PathConstraint>,
    ) -> Result<(Routed, RouteTrace, ProfileTree), RouteError> {
        self.route_with_probe(circuit, placement, constraints, ProfilingProbe::new())
            .map(|(routed, probe)| {
                let (trace, profile) = probe.finish();
                (routed, trace, profile)
            })
    }

    /// [`GlobalRouter::route`] behind a panic-isolation boundary.
    ///
    /// Any panic escaping the routing pipeline — an internal invariant
    /// failure, or an injected fault from
    /// [`crate::probe::FaultProbe`]-style instrumentation inside a
    /// custom probe — is caught and converted into
    /// [`RouteError::Internal`] carrying the panic message and the
    /// pipeline phase that was active. No panic crosses this call.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`GlobalRouter::route`], plus
    /// [`RouteError::Internal`] for caught panics.
    pub fn route_checked(
        &self,
        circuit: Circuit,
        placement: Placement,
        constraints: Vec<PathConstraint>,
    ) -> Result<Routed, RouteError> {
        self.route_checked_with_probe(circuit, placement, constraints, NoopProbe)
            .map(|(routed, _)| routed)
    }

    /// [`GlobalRouter::route_with_probe`] behind the same panic-isolation
    /// boundary as [`GlobalRouter::route_checked`]. On a caught panic the
    /// probe is lost (it was moved into the poisoned pipeline), so only
    /// the structured error comes back.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`GlobalRouter::route_checked`].
    pub fn route_checked_with_probe<P: Probe>(
        &self,
        circuit: Circuit,
        placement: Placement,
        constraints: Vec<PathConstraint>,
        probe: P,
    ) -> Result<(Routed, P), RouteError> {
        let tracked = PhaseTracked::new(probe);
        let phase_cell = tracked.handle();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.route_with_probe(circuit, placement, constraints, tracked)
        }));
        match outcome {
            Ok(result) => result.map(|(routed, tracked)| (routed, tracked.into_inner())),
            Err(payload) => {
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                Err(RouteError::Internal {
                    phase: PhaseTracked::<P>::label_of(
                        phase_cell.load(std::sync::atomic::Ordering::SeqCst),
                    ),
                    message,
                })
            }
        }
    }

    /// [`GlobalRouter::route`] with an explicit [`Probe`] observing every
    /// phase; returns the probe (moved through the engine) alongside the
    /// route.
    ///
    /// This is the [`RouteSession`] pipeline driven start-to-finish in
    /// one sitting: `start`, `step` until ready, `finish`. Sessionized
    /// and monolithic routes emit identical event streams by
    /// construction — they are the same code path (DESIGN.md §13).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`GlobalRouter::route`].
    pub fn route_with_probe<P: Probe>(
        &self,
        circuit: Circuit,
        placement: Placement,
        constraints: Vec<PathConstraint>,
        probe: P,
    ) -> Result<(Routed, P), RouteError> {
        let mut session =
            RouteSession::start(self.config.clone(), circuit, placement, constraints, probe)?;
        while session.step(None)? != StepOutcome::Ready {}
        session.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Phase;
    use bgr_layout::{Geometry, PlacementBuilder};
    use bgr_netlist::{CellId, CellLibrary, CircuitBuilder};

    /// A 2-row, 6-cell circuit with a pad-to-pad constraint.
    fn testcase() -> (Circuit, Placement, Vec<PathConstraint>) {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let nor2 = lib.kind_by_name("NOR2").unwrap();
        let feed = lib.kind_by_name("FEED1").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let b = cb.add_input_pad("b");
        let y = cb.add_output_pad("y");
        let u0 = cb.add_cell("u0", inv);
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", nor2);
        let u3 = cb.add_cell("u3", inv);
        let _f0 = cb.add_cell("f0", feed);
        let _f1 = cb.add_cell("f1", feed);
        cb.add_net("na", cb.pad_term(a), [cb.cell_term(u0, "A").unwrap()])
            .unwrap();
        cb.add_net("nb", cb.pad_term(b), [cb.cell_term(u1, "A").unwrap()])
            .unwrap();
        cb.add_net(
            "n0",
            cb.cell_term(u0, "Y").unwrap(),
            [cb.cell_term(u2, "A").unwrap()],
        )
        .unwrap();
        cb.add_net(
            "n1",
            cb.cell_term(u1, "Y").unwrap(),
            [cb.cell_term(u2, "B").unwrap()],
        )
        .unwrap();
        cb.add_net(
            "n2",
            cb.cell_term(u2, "Y").unwrap(),
            [cb.cell_term(u3, "A").unwrap()],
        )
        .unwrap();
        cb.add_net("ny", cb.cell_term(u3, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        let cons = vec![
            PathConstraint::new("a2y", cb.pad_term(a), cb.pad_term(y), 600.0),
            PathConstraint::new("b2y", cb.pad_term(b), cb.pad_term(y), 600.0),
        ];
        let circuit = cb.finish().unwrap();
        let mut pb = PlacementBuilder::new(Geometry::default(), 2);
        pb.append_with_width(0, CellId::new(0), 3); // u0
        pb.append_with_width(0, CellId::new(1), 3); // u1
        pb.append_with_width(0, CellId::new(4), 1); // f0
        pb.append_with_width(1, CellId::new(2), 4); // u2
        pb.append_with_width(1, CellId::new(3), 3); // u3
        pb.append_with_width(1, CellId::new(5), 1); // f1
        pb.place_pad_bottom(a, 0);
        pb.place_pad_bottom(b, 4);
        pb.place_pad_top(y, 6);
        let placement = pb.finish(&circuit).unwrap();
        (circuit, placement, cons)
    }

    #[test]
    fn routes_to_trees_with_constraints() {
        let (circuit, placement, cons) = testcase();
        let routed = GlobalRouter::new(RouterConfig::default())
            .route(circuit, placement, cons)
            .unwrap();
        assert_eq!(routed.result.trees.len(), 6);
        for tree in &routed.result.trees {
            assert!(!tree.segments.is_empty());
            assert!(tree.length_um > 0.0);
        }
        assert_eq!(routed.result.timing.constraints.len(), 2);
        assert!(routed.result.total_length_um > 0.0);
        assert!(routed.result.stats.deletions > 0);
    }

    #[test]
    fn unconstrained_mode_still_reports_timing() {
        let (circuit, placement, cons) = testcase();
        let routed = GlobalRouter::new(RouterConfig::unconstrained())
            .route(circuit, placement, cons)
            .unwrap();
        assert_eq!(routed.result.timing.constraints.len(), 2);
        assert!(routed.result.timing.max_arrival_ps() > 0.0);
    }

    #[test]
    fn constrained_delay_not_worse_than_unconstrained() {
        let (circuit, placement, cons) = testcase();
        let with = GlobalRouter::new(RouterConfig::default())
            .route(circuit.clone(), placement.clone(), cons.clone())
            .unwrap();
        let without = GlobalRouter::new(RouterConfig::unconstrained())
            .route(circuit, placement, cons)
            .unwrap();
        assert!(
            with.result.timing.max_arrival_ps() <= without.result.timing.max_arrival_ps() + 1e-6
        );
    }

    /// The testcase with its constraint limits replaced by `limit`.
    fn testcase_with_limit(limit: f64) -> (Circuit, Placement, Vec<PathConstraint>) {
        let (circuit, placement, cons) = testcase();
        let cons = cons
            .into_iter()
            .map(|c| PathConstraint::new(c.name, c.source, c.sink, limit))
            .collect();
        (circuit, placement, cons)
    }

    #[test]
    fn satisfiable_route_carries_no_violation_report() {
        let (circuit, placement, cons) = testcase();
        let routed = GlobalRouter::new(RouterConfig::default())
            .route(circuit, placement, cons)
            .unwrap();
        assert_eq!(routed.result.violations, None);
    }

    #[test]
    fn best_effort_routes_overconstrained_with_report() {
        // 1 ps is below pure gate delay: unsatisfiable by construction.
        let (circuit, placement, cons) = testcase_with_limit(1.0);
        let routed = GlobalRouter::new(RouterConfig::default())
            .route(circuit, placement, cons)
            .unwrap();
        let report = routed.result.violations.expect("must report violations");
        assert_eq!(report.entries.len(), 2);
        assert!(report.total_violation_ps() > 0.0);
        for entry in &report.entries {
            assert!(entry.violation_ps > 0.0);
            assert!(!entry.critical_nets.is_empty());
        }
        // The route itself still completed: a tree per net.
        assert_eq!(routed.result.trees.len(), 6);
    }

    #[test]
    fn fail_mode_errors_on_overconstrained_input() {
        let (circuit, placement, cons) = testcase_with_limit(1.0);
        let config = RouterConfig {
            on_violation: crate::config::OnViolation::Fail,
            ..RouterConfig::default()
        };
        let err = GlobalRouter::new(config)
            .route(circuit, placement, cons)
            .unwrap_err();
        match err {
            RouteError::ConstraintsUnsatisfied(report) => {
                assert_eq!(report.entries.len(), 2);
                assert!(report.total_violation_ps() > 0.0);
            }
            other => panic!("expected ConstraintsUnsatisfied, got {other:?}"),
        }
    }

    #[test]
    fn fail_and_best_effort_agree_when_satisfiable() {
        let (circuit, placement, cons) = testcase();
        let strict = GlobalRouter::new(RouterConfig {
            on_violation: crate::config::OnViolation::Fail,
            ..RouterConfig::default()
        })
        .route(circuit.clone(), placement.clone(), cons.clone())
        .unwrap();
        let lax = GlobalRouter::new(RouterConfig::default())
            .route(circuit, placement, cons)
            .unwrap();
        assert_eq!(strict.result.trees, lax.result.trees);
        assert_eq!(strict.result.violations, None);
        assert_eq!(lax.result.violations, None);
    }

    #[test]
    fn budgeted_route_still_yields_trees() {
        let (circuit, placement, cons) = testcase();
        let config = RouterConfig {
            budgets: crate::config::Budgets {
                deletion_steps: Some(2),
                phase_reroutes: Some(1),
            },
            ..RouterConfig::default()
        };
        let routed = GlobalRouter::new(config)
            .route(circuit, placement, cons)
            .unwrap();
        assert_eq!(routed.result.trees.len(), 6);
        for tree in &routed.result.trees {
            assert!(!tree.segments.is_empty());
        }
    }

    #[test]
    fn route_checked_matches_route_on_healthy_input() {
        let (circuit, placement, cons) = testcase();
        let plain = GlobalRouter::new(RouterConfig::default())
            .route(circuit.clone(), placement.clone(), cons.clone())
            .unwrap();
        let checked = GlobalRouter::new(RouterConfig::default())
            .route_checked(circuit, placement, cons)
            .unwrap();
        assert_eq!(plain.result.trees, checked.result.trees);
    }

    #[test]
    fn route_checked_converts_injected_panic_to_internal_error() {
        use crate::probe::{Fault, FaultProbe, FAULT_MARKER};
        let (circuit, placement, cons) = testcase();
        let err = GlobalRouter::new(RouterConfig::default())
            .route_checked_with_probe(
                circuit,
                placement,
                cons,
                FaultProbe::new(Fault::PanicAtPhaseEnter(Phase::InitialRouting)),
            )
            .unwrap_err();
        match err {
            RouteError::Internal { phase, message } => {
                assert!(message.contains(FAULT_MARKER), "{message}");
                // The fault fires *on entering* initial routing, so the
                // tracker has already recorded that phase.
                assert_eq!(phase, Phase::InitialRouting.label());
            }
            other => panic!("expected Internal, got {other:?}"),
        }
    }

    #[test]
    fn route_is_deterministic() {
        let (circuit, placement, cons) = testcase();
        let r1 = GlobalRouter::new(RouterConfig::default())
            .route(circuit.clone(), placement.clone(), cons.clone())
            .unwrap();
        let r2 = GlobalRouter::new(RouterConfig::default())
            .route(circuit, placement, cons)
            .unwrap();
        assert_eq!(r1.result.trees, r2.result.trees);
        assert_eq!(r1.result.channel_tracks, r2.result.channel_tracks);
    }

    use bgr_layout::Placement;
    use bgr_netlist::Circuit;
}
