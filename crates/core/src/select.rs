//! Edge-selection comparison (§3.4 and the §3.5 area variant).
//!
//! Deletion candidates are compared lexicographically. The delay criteria
//! come first (an edge whose deletion hurts timing less is preferred);
//! when they tie, the five density conditions are examined in order:
//!
//! 1. a trunk edge is preferred over a branch edge (deleting a trunk
//!    directly reduces channel density),
//! 2. smaller `F_m(c,e) = C_m(c) − D_m(e)`,
//! 3. smaller `N_m(c,e) = NC_m(c) − ND_m(e)`,
//! 4. smaller `C_M(c) − D_M(e)`,
//! 5. smaller `NC_M(c) − ND_M(e)`;
//!
//! if still even, the **longer** edge is selected. A final id comparison
//! makes selection fully deterministic.

use std::cmp::Ordering;

use bgr_netlist::NetId;

use crate::config::CriteriaOrder;
use crate::criteria::DelayCriteria;

/// Everything the comparator needs about one candidate edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeKey {
    /// Delay criteria (`C_d`, `Gl`, `LD`).
    pub delay: DelayCriteria,
    /// Whether the edge is a trunk.
    pub is_trunk: bool,
    /// `C_m(c) − D_m(e)` (condition 2); 0 for edges without a channel.
    pub f_min: i32,
    /// `NC_m(c) − ND_m(e)` (condition 3).
    pub n_min: i32,
    /// `C_M(c) − D_M(e)` (condition 4).
    pub f_max: i32,
    /// `NC_M(c) − ND_M(e)` (condition 5).
    pub n_max: i32,
    /// Edge length in µm (final preference: longer wins).
    pub len_um: f64,
    /// Owning net (determinism tiebreak).
    pub net: NetId,
    /// Edge index within the net (determinism tiebreak).
    pub edge: u32,
}

const EPS: f64 = 1e-9;

fn cmp_f64(a: f64, b: f64) -> Ordering {
    if (a - b).abs() <= EPS {
        Ordering::Equal
    } else {
        a.total_cmp(&b)
    }
}

fn cmp_delay(a: &EdgeKey, b: &EdgeKey) -> Ordering {
    a.delay
        .cd
        .cmp(&b.delay.cd)
        .then_with(|| cmp_f64(a.delay.gl, b.delay.gl))
        .then_with(|| cmp_f64(a.delay.ld, b.delay.ld))
}

fn cmp_density(a: &EdgeKey, b: &EdgeKey) -> Ordering {
    // Trunk preferred: `true` should come first, i.e. compare !is_trunk.
    (!a.is_trunk)
        .cmp(&!b.is_trunk)
        .then_with(|| a.f_min.cmp(&b.f_min))
        .then_with(|| a.n_min.cmp(&b.n_min))
        .then_with(|| a.f_max.cmp(&b.f_max))
        .then_with(|| a.n_max.cmp(&b.n_max))
}

fn cmp_tail(a: &EdgeKey, b: &EdgeKey) -> Ordering {
    // Longer edge preferred -> reverse length comparison; then ids.
    cmp_f64(b.len_um, a.len_um)
        .then_with(|| a.net.cmp(&b.net))
        .then_with(|| a.edge.cmp(&b.edge))
}

/// Total order on candidates: `Less` means "select `a` before `b`".
pub fn compare(a: &EdgeKey, b: &EdgeKey, order: CriteriaOrder) -> Ordering {
    match order {
        CriteriaOrder::DelayFirst => cmp_delay(a, b)
            .then_with(|| cmp_density(a, b))
            .then_with(|| cmp_tail(a, b)),
        CriteriaOrder::AreaFirst => a
            .delay
            .cd
            .cmp(&b.delay.cd)
            .then_with(|| cmp_density(a, b))
            .then_with(|| cmp_f64(a.delay.gl, b.delay.gl))
            .then_with(|| cmp_f64(a.delay.ld, b.delay.ld))
            .then_with(|| cmp_tail(a, b)),
        CriteriaOrder::DensityOnly => cmp_density(a, b).then_with(|| cmp_tail(a, b)),
    }
}

/// Which comparison tier of [`compare`] decided a selection — the
/// *decision provenance* attached to every `DeletionSelected` trace
/// event. A selection's provenance is computed against the runner-up
/// **champion** (the best candidate of any other net), which both
/// selection strategies agree on, so provenance is deterministic and
/// strategy-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DecidingTier {
    /// `C_d(e)` — the count of constraints driven non-positive.
    Cd,
    /// `Gl(e)` — the global penalty increase.
    Gl,
    /// `LD(e)` — the total arc-delay increase.
    Ld,
    /// Trunk-over-branch preference (density condition 1).
    TrunkPref,
    /// `C_m(c) − D_m(e)` (density condition 2).
    DMin,
    /// `NC_m(c) − ND_m(e)` (density condition 3).
    NdMin,
    /// `C_M(c) − D_M(e)` (density condition 4).
    DMax,
    /// `NC_M(c) − ND_M(e)` (density condition 5).
    NdMax,
    /// Longer-edge preference.
    Length,
    /// Net/edge id tie-break (full criteria tie).
    IdTieBreak,
    /// No runner-up existed (last deletable candidate in scope).
    OnlyCandidate,
}

impl DecidingTier {
    /// Every tier, in `DelayFirst` comparison order.
    pub const ALL: [DecidingTier; 11] = [
        DecidingTier::Cd,
        DecidingTier::Gl,
        DecidingTier::Ld,
        DecidingTier::TrunkPref,
        DecidingTier::DMin,
        DecidingTier::NdMin,
        DecidingTier::DMax,
        DecidingTier::NdMax,
        DecidingTier::Length,
        DecidingTier::IdTieBreak,
        DecidingTier::OnlyCandidate,
    ];

    /// Stable snake_case label (used by the JSONL schema).
    pub fn label(self) -> &'static str {
        match self {
            DecidingTier::Cd => "cd",
            DecidingTier::Gl => "gl",
            DecidingTier::Ld => "ld",
            DecidingTier::TrunkPref => "trunk_pref",
            DecidingTier::DMin => "d_min",
            DecidingTier::NdMin => "nd_min",
            DecidingTier::DMax => "d_max",
            DecidingTier::NdMax => "nd_max",
            DecidingTier::Length => "length",
            DecidingTier::IdTieBreak => "id_tie_break",
            DecidingTier::OnlyCandidate => "only_candidate",
        }
    }
}

/// Attributes a comparison between `a` and `b` to the first tier of
/// [`compare`]'s lexicographic chain (under `order`) that returned a
/// non-`Equal` answer. Falls back to [`DecidingTier::IdTieBreak`] when
/// the keys are fully identical (unreachable for distinct candidates —
/// ids make the order total).
pub fn deciding_tier(a: &EdgeKey, b: &EdgeKey, order: CriteriaOrder) -> DecidingTier {
    let cd = (a.delay.cd.cmp(&b.delay.cd), DecidingTier::Cd);
    let gl = (cmp_f64(a.delay.gl, b.delay.gl), DecidingTier::Gl);
    let ld = (cmp_f64(a.delay.ld, b.delay.ld), DecidingTier::Ld);
    let trunk = ((!a.is_trunk).cmp(&!b.is_trunk), DecidingTier::TrunkPref);
    let d_min = (a.f_min.cmp(&b.f_min), DecidingTier::DMin);
    let nd_min = (a.n_min.cmp(&b.n_min), DecidingTier::NdMin);
    let d_max = (a.f_max.cmp(&b.f_max), DecidingTier::DMax);
    let nd_max = (a.n_max.cmp(&b.n_max), DecidingTier::NdMax);
    let len = (cmp_f64(b.len_um, a.len_um), DecidingTier::Length);
    let id = (
        a.net.cmp(&b.net).then_with(|| a.edge.cmp(&b.edge)),
        DecidingTier::IdTieBreak,
    );
    let chain: [(Ordering, DecidingTier); 10] = match order {
        CriteriaOrder::DelayFirst => [cd, gl, ld, trunk, d_min, nd_min, d_max, nd_max, len, id],
        CriteriaOrder::AreaFirst => [cd, trunk, d_min, nd_min, d_max, nd_max, gl, ld, len, id],
        // Delay tiers never decide: pad the chain with the id tie-break.
        CriteriaOrder::DensityOnly => [trunk, d_min, nd_min, d_max, nd_max, len, id, id, id, id],
    };
    chain
        .iter()
        .find(|(o, _)| *o != Ordering::Equal)
        .map(|&(_, t)| t)
        .unwrap_or(DecidingTier::IdTieBreak)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> EdgeKey {
        EdgeKey {
            delay: DelayCriteria::default(),
            is_trunk: true,
            f_min: 0,
            n_min: 0,
            f_max: 0,
            n_max: 0,
            len_um: 10.0,
            net: NetId::new(0),
            edge: 0,
        }
    }

    #[test]
    fn smaller_cd_wins_first() {
        let mut a = base();
        let mut b = base();
        a.delay.cd = 0;
        b.delay.cd = 2;
        // Even if b is much better on density:
        b.f_max = -100;
        assert_eq!(compare(&a, &b, CriteriaOrder::DelayFirst), Ordering::Less);
    }

    #[test]
    fn gl_breaks_cd_ties() {
        let mut a = base();
        let mut b = base();
        a.delay.gl = 0.1;
        b.delay.gl = 0.5;
        assert_eq!(compare(&a, &b, CriteriaOrder::DelayFirst), Ordering::Less);
        assert_eq!(
            compare(&b, &a, CriteriaOrder::DelayFirst),
            Ordering::Greater
        );
    }

    #[test]
    fn trunk_preferred_over_branch_on_delay_tie() {
        let mut a = base();
        let mut b = base();
        a.is_trunk = false;
        b.is_trunk = true;
        assert_eq!(compare(&b, &a, CriteriaOrder::DelayFirst), Ordering::Less);
    }

    #[test]
    fn density_conditions_in_order() {
        let mut a = base();
        let mut b = base();
        a.f_min = 1;
        b.f_min = 2;
        assert_eq!(compare(&a, &b, CriteriaOrder::DelayFirst), Ordering::Less);
        // n_min only matters when f_min ties.
        a.f_min = 2;
        a.n_min = 0;
        b.n_min = 5;
        assert_eq!(compare(&a, &b, CriteriaOrder::DelayFirst), Ordering::Less);
    }

    #[test]
    fn longer_edge_wins_final_tie() {
        let mut a = base();
        let mut b = base();
        a.len_um = 50.0;
        b.len_um = 10.0;
        assert_eq!(compare(&a, &b, CriteriaOrder::DelayFirst), Ordering::Less);
    }

    #[test]
    fn ids_make_order_total() {
        let a = base();
        let mut b = base();
        b.edge = 1;
        assert_eq!(compare(&a, &b, CriteriaOrder::DelayFirst), Ordering::Less);
        assert_eq!(compare(&a, &a, CriteriaOrder::DelayFirst), Ordering::Equal);
    }

    #[test]
    fn area_order_checks_density_before_gl() {
        let mut a = base();
        let mut b = base();
        // a is worse on Gl but better on density.
        a.delay.gl = 5.0;
        a.f_max = -1;
        b.delay.gl = 0.0;
        b.f_max = 3;
        assert_eq!(compare(&a, &b, CriteriaOrder::AreaFirst), Ordering::Less);
        assert_eq!(
            compare(&a, &b, CriteriaOrder::DelayFirst),
            Ordering::Greater
        );
    }

    #[test]
    fn density_only_ignores_delay() {
        let mut a = base();
        let mut b = base();
        a.delay.cd = 9;
        b.delay.cd = 0;
        a.f_min = -1;
        assert_eq!(compare(&a, &b, CriteriaOrder::DensityOnly), Ordering::Less);
    }

    /// Hand-built pairs where each tier, in order, is the first
    /// discriminating criterion under `DelayFirst`.
    #[test]
    fn provenance_attributes_every_tier() {
        use DecidingTier as T;
        let order = CriteriaOrder::DelayFirst;
        // (mutator of the *winning* key, expected tier); each case also
        // perturbs a later tier to prove the earlier one is credited.
        type Mutator = Box<dyn Fn(&mut EdgeKey)>;
        let cases: Vec<(Mutator, T)> = vec![
            (
                Box::new(|k: &mut EdgeKey| {
                    k.delay.cd = 0;
                }),
                T::Cd,
            ),
            (
                Box::new(|k: &mut EdgeKey| {
                    k.delay.gl = -1.0;
                }),
                T::Gl,
            ),
            (
                Box::new(|k: &mut EdgeKey| {
                    k.delay.ld = -1.0;
                }),
                T::Ld,
            ),
            (
                Box::new(|k: &mut EdgeKey| {
                    k.is_trunk = true;
                }),
                T::TrunkPref,
            ),
            (
                Box::new(|k: &mut EdgeKey| {
                    k.f_min = -5;
                }),
                T::DMin,
            ),
            (
                Box::new(|k: &mut EdgeKey| {
                    k.n_min = -5;
                }),
                T::NdMin,
            ),
            (
                Box::new(|k: &mut EdgeKey| {
                    k.f_max = -5;
                }),
                T::DMax,
            ),
            (
                Box::new(|k: &mut EdgeKey| {
                    k.n_max = -5;
                }),
                T::NdMax,
            ),
            (
                Box::new(|k: &mut EdgeKey| {
                    k.len_um = 99.0;
                }),
                T::Length,
            ),
            (
                Box::new(|k: &mut EdgeKey| {
                    k.edge = 0;
                }),
                T::IdTieBreak,
            ),
        ];
        for (mutate, expected) in cases {
            // The loser is "worse from this tier down": cd=1 vs 0 keeps
            // earlier tiers tied in later cases because both start at 1.
            let mut loser = base();
            loser.delay.cd = 1;
            loser.is_trunk = false;
            loser.edge = 7;
            let mut winner = loser;
            mutate(&mut winner);
            assert_eq!(
                deciding_tier(&winner, &loser, order),
                expected,
                "expected {expected:?}"
            );
            assert_eq!(
                compare(&winner, &loser, order),
                Ordering::Less,
                "winner must win at {expected:?}"
            );
        }
    }

    #[test]
    fn provenance_respects_area_first_reordering() {
        // Better Gl but worse density: density decides under AreaFirst,
        // Gl under DelayFirst.
        let mut a = base();
        let mut b = base();
        a.delay.gl = 5.0;
        a.f_max = -1;
        b.delay.gl = 0.0;
        b.f_max = 3;
        assert_eq!(
            deciding_tier(&a, &b, CriteriaOrder::AreaFirst),
            DecidingTier::DMax
        );
        assert_eq!(
            deciding_tier(&a, &b, CriteriaOrder::DelayFirst),
            DecidingTier::Gl
        );
        // DensityOnly never attributes to a delay tier.
        let mut c = base();
        c.delay.cd = 9;
        assert_eq!(
            deciding_tier(&c, &base(), CriteriaOrder::DensityOnly),
            DecidingTier::IdTieBreak
        );
    }

    /// The attributed tier always agrees with `compare`: the ordering at
    /// the deciding tier *is* the comparison's result.
    #[test]
    fn provenance_is_consistent_with_compare() {
        let orders = [
            CriteriaOrder::DelayFirst,
            CriteriaOrder::AreaFirst,
            CriteriaOrder::DensityOnly,
        ];
        // Small cartesian sweep over discriminating fields.
        let mut keys = Vec::new();
        for cd in [0u32, 1] {
            for gl in [0.0, 0.5] {
                for trunk in [false, true] {
                    for f_min in [0, 2] {
                        for len in [10.0, 20.0] {
                            let mut k = base();
                            k.delay.cd = cd;
                            k.delay.gl = gl;
                            k.is_trunk = trunk;
                            k.f_min = f_min;
                            k.len_um = len;
                            k.edge = keys.len() as u32;
                            keys.push(k);
                        }
                    }
                }
            }
        }
        for order in orders {
            for a in &keys {
                for b in &keys {
                    let tier = deciding_tier(a, b, order);
                    let cmp = compare(a, b, order);
                    if std::ptr::eq(a, b) {
                        continue;
                    }
                    // Symmetry: swapping operands flips the ordering but
                    // keeps the attributed tier.
                    assert_eq!(deciding_tier(b, a, order), tier);
                    assert_eq!(compare(b, a, order), cmp.reverse());
                    // Ids differ, so some tier always decides.
                    assert_ne!(cmp, Ordering::Equal);
                }
            }
        }
    }
}
