//! Edge-selection comparison (§3.4 and the §3.5 area variant).
//!
//! Deletion candidates are compared lexicographically. The delay criteria
//! come first (an edge whose deletion hurts timing less is preferred);
//! when they tie, the five density conditions are examined in order:
//!
//! 1. a trunk edge is preferred over a branch edge (deleting a trunk
//!    directly reduces channel density),
//! 2. smaller `F_m(c,e) = C_m(c) − D_m(e)`,
//! 3. smaller `N_m(c,e) = NC_m(c) − ND_m(e)`,
//! 4. smaller `C_M(c) − D_M(e)`,
//! 5. smaller `NC_M(c) − ND_M(e)`;
//!
//! if still even, the **longer** edge is selected. A final id comparison
//! makes selection fully deterministic.

use std::cmp::Ordering;

use bgr_netlist::NetId;

use crate::config::CriteriaOrder;
use crate::criteria::DelayCriteria;

/// Everything the comparator needs about one candidate edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeKey {
    /// Delay criteria (`C_d`, `Gl`, `LD`).
    pub delay: DelayCriteria,
    /// Whether the edge is a trunk.
    pub is_trunk: bool,
    /// `C_m(c) − D_m(e)` (condition 2); 0 for edges without a channel.
    pub f_min: i32,
    /// `NC_m(c) − ND_m(e)` (condition 3).
    pub n_min: i32,
    /// `C_M(c) − D_M(e)` (condition 4).
    pub f_max: i32,
    /// `NC_M(c) − ND_M(e)` (condition 5).
    pub n_max: i32,
    /// Edge length in µm (final preference: longer wins).
    pub len_um: f64,
    /// Owning net (determinism tiebreak).
    pub net: NetId,
    /// Edge index within the net (determinism tiebreak).
    pub edge: u32,
}

const EPS: f64 = 1e-9;

fn cmp_f64(a: f64, b: f64) -> Ordering {
    if (a - b).abs() <= EPS {
        Ordering::Equal
    } else {
        a.total_cmp(&b)
    }
}

fn cmp_delay(a: &EdgeKey, b: &EdgeKey) -> Ordering {
    a.delay
        .cd
        .cmp(&b.delay.cd)
        .then_with(|| cmp_f64(a.delay.gl, b.delay.gl))
        .then_with(|| cmp_f64(a.delay.ld, b.delay.ld))
}

fn cmp_density(a: &EdgeKey, b: &EdgeKey) -> Ordering {
    // Trunk preferred: `true` should come first, i.e. compare !is_trunk.
    (!a.is_trunk)
        .cmp(&!b.is_trunk)
        .then_with(|| a.f_min.cmp(&b.f_min))
        .then_with(|| a.n_min.cmp(&b.n_min))
        .then_with(|| a.f_max.cmp(&b.f_max))
        .then_with(|| a.n_max.cmp(&b.n_max))
}

fn cmp_tail(a: &EdgeKey, b: &EdgeKey) -> Ordering {
    // Longer edge preferred -> reverse length comparison; then ids.
    cmp_f64(b.len_um, a.len_um)
        .then_with(|| a.net.cmp(&b.net))
        .then_with(|| a.edge.cmp(&b.edge))
}

/// Total order on candidates: `Less` means "select `a` before `b`".
pub fn compare(a: &EdgeKey, b: &EdgeKey, order: CriteriaOrder) -> Ordering {
    match order {
        CriteriaOrder::DelayFirst => cmp_delay(a, b)
            .then_with(|| cmp_density(a, b))
            .then_with(|| cmp_tail(a, b)),
        CriteriaOrder::AreaFirst => a
            .delay
            .cd
            .cmp(&b.delay.cd)
            .then_with(|| cmp_density(a, b))
            .then_with(|| cmp_f64(a.delay.gl, b.delay.gl))
            .then_with(|| cmp_f64(a.delay.ld, b.delay.ld))
            .then_with(|| cmp_tail(a, b)),
        CriteriaOrder::DensityOnly => cmp_density(a, b).then_with(|| cmp_tail(a, b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> EdgeKey {
        EdgeKey {
            delay: DelayCriteria::default(),
            is_trunk: true,
            f_min: 0,
            n_min: 0,
            f_max: 0,
            n_max: 0,
            len_um: 10.0,
            net: NetId::new(0),
            edge: 0,
        }
    }

    #[test]
    fn smaller_cd_wins_first() {
        let mut a = base();
        let mut b = base();
        a.delay.cd = 0;
        b.delay.cd = 2;
        // Even if b is much better on density:
        b.f_max = -100;
        assert_eq!(compare(&a, &b, CriteriaOrder::DelayFirst), Ordering::Less);
    }

    #[test]
    fn gl_breaks_cd_ties() {
        let mut a = base();
        let mut b = base();
        a.delay.gl = 0.1;
        b.delay.gl = 0.5;
        assert_eq!(compare(&a, &b, CriteriaOrder::DelayFirst), Ordering::Less);
        assert_eq!(
            compare(&b, &a, CriteriaOrder::DelayFirst),
            Ordering::Greater
        );
    }

    #[test]
    fn trunk_preferred_over_branch_on_delay_tie() {
        let mut a = base();
        let mut b = base();
        a.is_trunk = false;
        b.is_trunk = true;
        assert_eq!(compare(&b, &a, CriteriaOrder::DelayFirst), Ordering::Less);
    }

    #[test]
    fn density_conditions_in_order() {
        let mut a = base();
        let mut b = base();
        a.f_min = 1;
        b.f_min = 2;
        assert_eq!(compare(&a, &b, CriteriaOrder::DelayFirst), Ordering::Less);
        // n_min only matters when f_min ties.
        a.f_min = 2;
        a.n_min = 0;
        b.n_min = 5;
        assert_eq!(compare(&a, &b, CriteriaOrder::DelayFirst), Ordering::Less);
    }

    #[test]
    fn longer_edge_wins_final_tie() {
        let mut a = base();
        let mut b = base();
        a.len_um = 50.0;
        b.len_um = 10.0;
        assert_eq!(compare(&a, &b, CriteriaOrder::DelayFirst), Ordering::Less);
    }

    #[test]
    fn ids_make_order_total() {
        let a = base();
        let mut b = base();
        b.edge = 1;
        assert_eq!(compare(&a, &b, CriteriaOrder::DelayFirst), Ordering::Less);
        assert_eq!(compare(&a, &a, CriteriaOrder::DelayFirst), Ordering::Equal);
    }

    #[test]
    fn area_order_checks_density_before_gl() {
        let mut a = base();
        let mut b = base();
        // a is worse on Gl but better on density.
        a.delay.gl = 5.0;
        a.f_max = -1;
        b.delay.gl = 0.0;
        b.f_max = 3;
        assert_eq!(compare(&a, &b, CriteriaOrder::AreaFirst), Ordering::Less);
        assert_eq!(
            compare(&a, &b, CriteriaOrder::DelayFirst),
            Ordering::Greater
        );
    }

    #[test]
    fn density_only_ignores_delay() {
        let mut a = base();
        let mut b = base();
        a.delay.cd = 9;
        b.delay.cd = 0;
        a.f_min = -1;
        assert_eq!(compare(&a, &b, CriteriaOrder::DensityOnly), Ordering::Less);
    }
}
