//! The candidate scoreboard: an ordered pool of [`EdgeKey`]s with
//! generation-stamped lazy invalidation, sharded by channel region.
//!
//! The deletion loop (Fig. 2 lines 04–07) needs the minimum-ranked
//! deletable edge across every in-scope net on every iteration. The
//! naive formulation recomputes every key per iteration —
//! `O(nets × edges)` key evaluations per selection, each one a Dijkstra
//! over the net's routing graph. The scoreboard instead keeps all
//! current keys in binary heaps and re-keys only *dirty* nets after a
//! deletion.
//!
//! # Invalidation contract
//!
//! The scoreboard holds one generation counter per net. Re-keying a net
//! (or invalidating it) bumps the counter; heap entries carry the
//! counter value at push time and are discarded on pop when they no
//! longer match. Consequently:
//!
//! * callers must invalidate-and-re-key every net whose key set may
//!   have changed (the *dirty set* — see `Engine::run_deletion` for the
//!   derivation from graph generations, touched channels and refreshed
//!   timing constraints);
//! * nets outside the dirty set keep their entries, which remain
//!   *exactly* the keys a full rescan would compute, because every
//!   input of [`EdgeKey`] is covered by the dirty-set definition.
//!
//! Stale entries are never purged eagerly; the heaps are drained
//! lazily, so a push is `O(log shard)` and a pop amortizes over the
//! entries it discards.
//!
//! # Sharding and the tournament
//!
//! The pool is split into one heap per [`ShardMap`] shard (a band of
//! channels; every net is statically pinned to the shard of its home
//! channel). A re-key batch then only disturbs the heaps of the
//! channels it touched, and each push pays `O(log shard)` instead of
//! `O(log total)`. Selection becomes a **tournament**: drain stale
//! entries off every shard's top, then take the minimum of the shard
//! minima, scanning shards in ascending index with a strict-less
//! comparison — so ties (under the EPS-fuzzy [`compare`]) resolve to
//! the lowest shard index holding the minimum. Because every live
//! entry's key carries its `(net, edge)` identity and [`compare`] ends
//! in that total tiebreak, equal keys cannot belong to different
//! candidates: the tournament winner is the same candidate a single
//! global heap would pop. DESIGN.md §10 gives the full determinism
//! argument, including why EPS-fuzziness does not perturb it.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use bgr_netlist::NetId;

use crate::config::CriteriaOrder;
use crate::probe::{Counter, Hist, NoopProbe, Probe};
use crate::select::{compare, EdgeKey};
use crate::shard::ShardMap;

#[derive(Debug, Clone)]
struct Entry {
    key: EdgeKey,
    /// Owning net's scoreboard generation at push time.
    stamp: u64,
    /// Criteria order of the run (uniform across one scoreboard).
    order: CriteriaOrder,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // `BinaryHeap` is a max-heap; reverse the selection order so the
        // best (smallest) candidate surfaces at the top.
        compare(&other.key, &self.key, self.order)
    }
}

/// Ordered candidate pool over every deletable edge of the in-scope
/// nets. See the [module docs](self) for the invalidation contract and
/// the sharded tournament.
#[derive(Debug)]
pub struct Scoreboard {
    heaps: Vec<BinaryHeap<Entry>>,
    map: ShardMap,
    net_gen: Vec<u64>,
    order: CriteriaOrder,
}

impl Scoreboard {
    /// Creates an empty single-shard scoreboard for `num_nets` nets,
    /// comparing keys with `order`.
    pub fn new(num_nets: usize, order: CriteriaOrder) -> Self {
        Self::with_shards(ShardMap::single(num_nets), order)
    }

    /// Creates an empty scoreboard sharded by `map`, comparing keys
    /// with `order`.
    pub fn with_shards(map: ShardMap, order: CriteriaOrder) -> Self {
        Self {
            heaps: (0..map.count()).map(|_| BinaryHeap::new()).collect(),
            net_gen: vec![0; map.num_nets()],
            map,
            order,
        }
    }

    /// Number of live (non-stale) entries is at most this; stale entries
    /// inflate it until they are popped.
    pub fn len(&self) -> usize {
        self.heaps.iter().map(BinaryHeap::len).sum()
    }

    /// Whether the heaps hold no entries at all (stale or live).
    pub fn is_empty(&self) -> bool {
        self.heaps.iter().all(BinaryHeap::is_empty)
    }

    /// The criteria order this scoreboard compares keys with.
    pub fn order(&self) -> CriteriaOrder {
        self.order
    }

    /// Number of shards the pool is split into.
    pub fn num_shards(&self) -> usize {
        self.heaps.len()
    }

    /// The shard holding `net`'s candidates.
    pub fn shard_of(&self, net: NetId) -> usize {
        self.map.shard_of(net)
    }

    /// Invalidates every entry of `net`: bumps its generation so existing
    /// heap entries die lazily. Call before re-pushing the net's current
    /// keys.
    ///
    /// # Panics
    ///
    /// Panics if the net's generation counter would wrap. A `u64` bump
    /// per re-key cannot overflow in any real route (half a million
    /// re-keys per second for a million years), so wraparound could only
    /// mean memory corruption — and silently wrapping would resurrect
    /// every stale entry pushed under generation zero.
    pub fn invalidate_net(&mut self, net: NetId) {
        let g = &mut self.net_gen[net.index()];
        *g = g
            .checked_add(1)
            .expect("scoreboard generation counter overflowed");
    }

    /// Pushes a candidate key into its net's shard, stamped with the
    /// net's current generation.
    pub fn push(&mut self, key: EdgeKey) {
        let stamp = self.net_gen[key.net.index()];
        let shard = self.map.shard_of(key.net);
        self.heaps[shard].push(Entry {
            key,
            stamp,
            order: self.order,
        });
    }

    /// Drains stale entries off the top of shard `s`, returning how many
    /// were discarded. Afterwards the shard's top (if any) is live.
    fn drain_stale_top(&mut self, s: usize) -> u64 {
        let mut stale = 0u64;
        while let Some(e) = self.heaps[s].peek() {
            if e.stamp == self.net_gen[e.key.net.index()] {
                break;
            }
            self.heaps[s].pop();
            stale += 1;
        }
        stale
    }

    /// Pops the best *valid* candidate, discarding stale entries, or
    /// `None` when no valid candidate remains.
    pub fn pop_valid(&mut self) -> Option<EdgeKey> {
        self.pop_valid_probed(&mut NoopProbe)
    }

    /// [`Scoreboard::pop_valid`] with instrumentation: every pop is
    /// counted ([`Counter::HeapPop`]), stale discards additionally as
    /// [`Counter::StaleHeapPop`], and the number of discards preceding
    /// the answer is one [`Hist::StalePopsPerSelection`] observation.
    ///
    /// The tournament scans shards in ascending index and takes a
    /// candidate only when strictly less than the best so far, so the
    /// result is a pure function of the live entries (see the
    /// [module docs](self)).
    pub fn pop_valid_probed<P: Probe>(&mut self, probe: &mut P) -> Option<EdgeKey> {
        let mut stale = 0u64;
        for s in 0..self.heaps.len() {
            stale += self.drain_stale_top(s);
        }
        let mut best: Option<(usize, &EdgeKey)> = None;
        for (s, heap) in self.heaps.iter().enumerate() {
            let Some(e) = heap.peek() else { continue };
            let better = match best {
                None => true,
                Some((_, b)) => compare(&e.key, b, self.order) == Ordering::Less,
            };
            if better {
                best = Some((s, &e.key));
            }
        }
        let winner = best.map(|(s, _)| s);
        let out = winner.map(|s| {
            self.heaps[s]
                .pop()
                .expect("tournament winner shard has a top entry")
                .key
        });
        if P::ENABLED {
            probe.count(Counter::HeapPop, stale + u64::from(out.is_some()));
            probe.count(Counter::StaleHeapPop, stale);
            probe.sample(Hist::StalePopsPerSelection, stale);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::DelayCriteria;

    fn key(net: usize, edge: u32, f_max: i32) -> EdgeKey {
        EdgeKey {
            delay: DelayCriteria::default(),
            is_trunk: true,
            f_min: 0,
            n_min: 0,
            f_max,
            n_max: 0,
            len_um: 10.0,
            net: NetId::new(net),
            edge,
        }
    }

    /// Four nets in two shards: nets 0-1 in shard 0, nets 2-3 in shard 1.
    fn two_shard_map() -> ShardMap {
        ShardMap::by_home_channel(2, 4, &[0, 1, 2, 3])
    }

    #[test]
    fn pops_in_selection_order() {
        let mut sb = Scoreboard::new(3, CriteriaOrder::DelayFirst);
        sb.push(key(0, 0, 5));
        sb.push(key(1, 0, -2));
        sb.push(key(2, 0, 1));
        assert_eq!(sb.pop_valid().map(|k| k.net), Some(NetId::new(1)));
        assert_eq!(sb.pop_valid().map(|k| k.net), Some(NetId::new(2)));
        assert_eq!(sb.pop_valid().map(|k| k.net), Some(NetId::new(0)));
        assert_eq!(sb.pop_valid(), None);
    }

    #[test]
    fn invalidation_kills_stale_entries_lazily() {
        let mut sb = Scoreboard::new(2, CriteriaOrder::DelayFirst);
        sb.push(key(0, 0, -10)); // would win…
        sb.push(key(1, 0, 3));
        sb.invalidate_net(NetId::new(0)); // …but is now stale
        assert_eq!(sb.pop_valid().map(|k| k.net), Some(NetId::new(1)));
        assert_eq!(sb.pop_valid(), None);
    }

    #[test]
    fn rekeying_after_invalidation_revives_a_net() {
        let mut sb = Scoreboard::new(2, CriteriaOrder::DelayFirst);
        sb.push(key(0, 0, 0));
        sb.invalidate_net(NetId::new(0));
        sb.push(key(0, 1, 7)); // fresh key under the new generation
        let k = sb.pop_valid().unwrap();
        assert_eq!((k.net, k.edge), (NetId::new(0), 1));
        assert_eq!(sb.pop_valid(), None);
    }

    #[test]
    fn id_tiebreaks_keep_pops_deterministic() {
        let mut sb = Scoreboard::new(1, CriteriaOrder::DelayFirst);
        // Identical criteria: net/edge ids decide.
        sb.push(key(0, 2, 0));
        sb.push(key(0, 0, 0));
        sb.push(key(0, 1, 0));
        let order: Vec<u32> = std::iter::from_fn(|| sb.pop_valid().map(|k| k.edge)).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn tournament_pops_the_global_minimum_across_shards() {
        let mut sb = Scoreboard::with_shards(two_shard_map(), CriteriaOrder::DelayFirst);
        assert_eq!(sb.num_shards(), 2);
        sb.push(key(0, 0, 4)); // shard 0
        sb.push(key(2, 0, -1)); // shard 1: global minimum
        sb.push(key(3, 0, 2)); // shard 1
        sb.push(key(1, 0, 0)); // shard 0
        let pops: Vec<usize> =
            std::iter::from_fn(|| sb.pop_valid().map(|k| k.net.index())).collect();
        assert_eq!(pops, vec![2, 1, 3, 0]);
        assert!(sb.is_empty());
    }

    #[test]
    fn tournament_ties_resolve_by_total_key_order_not_shard_order() {
        // Identical criteria in both shards: the (net, edge) tiebreak of
        // `compare` decides, exactly as a single global heap would.
        let mut sb = Scoreboard::with_shards(two_shard_map(), CriteriaOrder::DelayFirst);
        sb.push(key(2, 0, 0)); // shard 1, lower net id than…
        sb.push(key(3, 0, 0)); // …shard 1 sibling
        sb.push(key(0, 1, 0)); // shard 0, lowest net id of all
        let pops: Vec<usize> =
            std::iter::from_fn(|| sb.pop_valid().map(|k| k.net.index())).collect();
        assert_eq!(pops, vec![0, 2, 3]);
    }

    #[test]
    fn stale_champion_of_fully_bridged_net_is_skipped_in_every_shard() {
        // A net whose last deletable edge became a bridge re-keys to *no*
        // champion: its generation bumps and nothing is re-pushed. The
        // tournament must see through the stale top of its shard.
        let mut sb = Scoreboard::with_shards(two_shard_map(), CriteriaOrder::DelayFirst);
        sb.push(key(0, 0, -5)); // shard 0: would win the tournament…
        sb.push(key(2, 0, 3)); // shard 1
        sb.invalidate_net(NetId::new(0)); // …but its net is now fully bridged
        assert_eq!(sb.pop_valid().map(|k| k.net), Some(NetId::new(2)));
        assert_eq!(sb.pop_valid(), None);
        assert!(sb.is_empty(), "stale entries were drained, not leaked");
    }

    #[test]
    #[should_panic(expected = "scoreboard generation counter overflowed")]
    fn generation_wraparound_is_a_loud_failure() {
        let mut sb = Scoreboard::new(1, CriteriaOrder::DelayFirst);
        sb.net_gen[0] = u64::MAX;
        sb.invalidate_net(NetId::new(0));
    }

    #[test]
    fn probed_pop_counts_stale_discards_across_shards() {
        use crate::probe::CollectingProbe;
        let mut sb = Scoreboard::with_shards(two_shard_map(), CriteriaOrder::DelayFirst);
        sb.push(key(0, 0, 1));
        sb.push(key(0, 1, 2));
        sb.push(key(2, 0, 5));
        sb.invalidate_net(NetId::new(0)); // both shard-0 entries go stale
        let mut probe = CollectingProbe::new();
        let got = sb.pop_valid_probed(&mut probe);
        assert_eq!(got.map(|k| k.net), Some(NetId::new(2)));
        let trace = probe.finish();
        assert_eq!(trace.counter(Counter::StaleHeapPop), 2);
        assert_eq!(trace.counter(Counter::HeapPop), 3);
    }
}
