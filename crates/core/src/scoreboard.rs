//! The candidate scoreboard: an ordered pool of **raw** [`EdgeKey`]s
//! with generation-stamped lazy invalidation, one heap per channel,
//! channel aggregates composed in at pop time, and per-shard cached
//! minima so selection skips shards with no fresh entries.
//!
//! The deletion loop (Fig. 2 lines 04–07) needs the minimum-ranked
//! deletable edge across every in-scope net on every iteration. The
//! naive formulation recomputes every key per iteration —
//! `O(nets × edges)` key evaluations per selection, each one a Dijkstra
//! over the net's routing graph. The scoreboard instead keeps all
//! current keys in binary heaps and re-keys only *dirty* nets after a
//! deletion.
//!
//! # Raw keys and compose-at-pop
//!
//! A full [`EdgeKey`] mixes three ingredients with very different
//! lifetimes: the delay prefix (moves when the net's graph or
//! constraints move), the edge's **own density window** (moves when a
//! touched span overlaps the edge), and the channel **aggregates**
//! `C_M/NC_M/C_m/NC_m` (move on almost every deletion in the channel).
//! Storing composed keys therefore re-keys whole channels whenever an
//! aggregate moves. The scoreboard stores the *raw* part only — delay
//! prefix plus the **negated** window terms — and adds the owning
//! channel's aggregates at pop time:
//!
//! ```text
//! composed.f_min = C_m(channel) − window.d_min   (raw.f_min = −window.d_min)
//! composed.f_max = C_M(channel) − window.d_max   … and likewise NC_m/NC_M
//! ```
//!
//! Within one heap all entries share a channel, so composition adds the
//! *same* offsets to every entry: the heap order on raw keys equals the
//! order on composed keys (delay tiers and the trunk-preference bit are
//! compared before the density values and are composition-invariant;
//! the `i32` density tiers shift by a common addend, which `i32::cmp`
//! cancels exactly; the trailing `len/net/edge` tiebreaks are
//! untouched). Branch keys store zero window terms (they read
//! aggregates only) and feed-half keys — which read no density at all —
//! live in a trailing **channelless heap** composed with the identity.
//! Aggregate motion thus never invalidates a stored entry; the engine
//! only has to [`Scoreboard::refresh_channel`] the affected channel so
//! the *cached shard minimum* below is recomposed.
//!
//! # Invalidation contract
//!
//! The scoreboard holds one generation counter per net. Re-keying a net
//! (or invalidating it) bumps the counter; heap entries carry the
//! counter value at push time and are discarded on pop when they no
//! longer match. Consequently:
//!
//! * callers must invalidate-and-re-key every net whose **raw** key set
//!   may have changed (the *dirty set* — graph generations, touched
//!   span overlaps, refreshed timing constraints; see
//!   `Engine::run_deletion`), and call
//!   [`Scoreboard::refresh_channel`] for every channel whose aggregates
//!   moved;
//! * nets outside the dirty set keep their entries, which remain
//!   *exactly* the raw keys a full rescan would compute, because every
//!   raw-key input is covered by the dirty-set definition.
//!
//! Stale entries are never purged eagerly; the heaps are drained
//! lazily, so a push is `O(log heap)` and a pop amortizes over the
//! entries it discards.
//!
//! # Sharding, cached minima and the tournament
//!
//! The heaps are grouped into contiguous channel bands by a
//! [`ShardMap`], and each shard caches its minimum *composed* key. A
//! cache stays valid until something that could move it happens: a push
//! into the shard, a pop out of it, an [`Scoreboard::invalidate_net`]
//! touching a heap the net has entries in, or a
//! [`Scoreboard::refresh_channel`] on one of its channels. Selection
//! rebuilds only the invalid shards (draining stale heap tops,
//! composing each heap's live top — one aggregate read per heap — and
//! taking the strict-less minimum in ascending heap index), then runs a
//! **tournament** over the cached shard minima in ascending shard index
//! with a strict-less comparison — so ties (under the EPS-fuzzy
//! [`compare`]) resolve to the lowest heap index holding the minimum,
//! exactly as a single global heap would resolve them, because every
//! live entry's key carries its `(net, edge)` identity and [`compare`]
//! ends in that total tiebreak. DESIGN.md §10 gives the full
//! determinism argument, including why EPS-fuzziness does not perturb
//! it.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use bgr_layout::ChannelId;
use bgr_netlist::NetId;

use crate::config::CriteriaOrder;
use crate::density::DensityMap;
use crate::probe::{Counter, Hist, NoopProbe, Probe};
use crate::select::{compare, EdgeKey};
use crate::shard::ShardMap;

#[derive(Debug, Clone)]
struct Entry {
    key: EdgeKey,
    /// Owning net's scoreboard generation at push time.
    stamp: u64,
    /// Criteria order of the run (uniform across one scoreboard).
    order: CriteriaOrder,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // `BinaryHeap` is a max-heap; reverse the selection order so the
        // best (smallest) candidate surfaces at the top. Raw-key order
        // equals composed order within one heap (see the module docs).
        compare(&other.key, &self.key, self.order)
    }
}

/// Cached minimum of one shard: the best composed key over its heaps,
/// valid until the shard receives a push / pop / invalidation /
/// aggregate refresh.
#[derive(Debug, Clone, Default)]
struct ShardCache {
    valid: bool,
    /// `(heap, composed key)` of the shard's best live entry, `None`
    /// when the shard is empty of live entries.
    min: Option<(u32, EdgeKey)>,
}

/// Ordered candidate pool over every deletable edge of the in-scope
/// nets. See the [module docs](self) for raw keys, the invalidation
/// contract and the sharded tournament.
#[derive(Debug)]
pub struct Scoreboard {
    /// One heap per channel, plus the trailing channelless heap
    /// (feed-half candidates; composed with the identity).
    heaps: Vec<BinaryHeap<Entry>>,
    map: ShardMap,
    net_gen: Vec<u64>,
    /// Conservative per-net list of heaps holding its entries, recorded
    /// at push and cleared at invalidation — the shards to dirty when
    /// the net's generation bumps.
    net_heaps: Vec<Vec<u32>>,
    cache: Vec<ShardCache>,
    /// Precomputed shard → heaps expansion of `map`.
    shard_heaps: Vec<Vec<u32>>,
    order: CriteriaOrder,
}

impl Scoreboard {
    /// Creates an empty single-shard scoreboard for `num_nets` nets
    /// over `num_channels` channels (plus the channelless heap),
    /// comparing keys with `order`.
    pub fn new(num_nets: usize, num_channels: usize, order: CriteriaOrder) -> Self {
        Self::with_shards(ShardMap::single(num_channels + 1), num_nets, order)
    }

    /// Creates an empty scoreboard sharded by `map` (which covers the
    /// channel heaps plus the trailing channelless heap), comparing
    /// keys with `order`.
    pub fn with_shards(map: ShardMap, num_nets: usize, order: CriteriaOrder) -> Self {
        let shards = map.count();
        let mut shard_heaps = vec![Vec::new(); shards];
        for h in 0..map.num_heaps() {
            shard_heaps[map.shard_of_heap(h)].push(h as u32);
        }
        Self {
            heaps: (0..map.num_heaps()).map(|_| BinaryHeap::new()).collect(),
            net_gen: vec![0; num_nets],
            net_heaps: vec![Vec::new(); num_nets],
            cache: vec![ShardCache::default(); shards],
            shard_heaps,
            map,
            order,
        }
    }

    /// Number of live (non-stale) entries is at most this; stale entries
    /// inflate it until they are popped.
    pub fn len(&self) -> usize {
        self.heaps.iter().map(BinaryHeap::len).sum()
    }

    /// Whether the heaps hold no entries at all (stale or live).
    pub fn is_empty(&self) -> bool {
        self.heaps.iter().all(BinaryHeap::is_empty)
    }

    /// The criteria order this scoreboard compares keys with.
    pub fn order(&self) -> CriteriaOrder {
        self.order
    }

    /// Number of shards the heaps are grouped into.
    pub fn num_shards(&self) -> usize {
        self.cache.len()
    }

    /// The index of the channelless heap (feed-half candidates).
    fn channelless(&self) -> usize {
        self.heaps.len() - 1
    }

    /// The heap a candidate of `channel` belongs to.
    fn heap_of(&self, channel: Option<ChannelId>) -> usize {
        match channel {
            Some(c) => c.index(),
            None => self.channelless(),
        }
    }

    /// Composes a raw key from `heap` with the current channel
    /// aggregates (identity for the channelless heap).
    fn compose(&self, heap: usize, key: EdgeKey, density: &DensityMap) -> EdgeKey {
        if heap == self.channelless() {
            return key;
        }
        let c = ChannelId::new(heap);
        let mut k = key;
        k.f_min += density.c_min(c);
        k.n_min += density.nc_min(c);
        k.f_max += density.c_max(c);
        k.n_max += density.nc_max(c);
        k
    }

    fn dirty_shard_of_heap(&mut self, heap: usize) {
        let s = self.map.shard_of_heap(heap);
        self.cache[s].valid = false;
    }

    /// Invalidates every entry of `net`: bumps its generation so existing
    /// heap entries die lazily, and dirties the shards that held them.
    /// Call before re-pushing the net's current keys.
    ///
    /// # Panics
    ///
    /// Panics if the net's generation counter would wrap. A `u64` bump
    /// per re-key cannot overflow in any real route (half a million
    /// re-keys per second for a million years), so wraparound could only
    /// mean memory corruption — and silently wrapping would resurrect
    /// every stale entry pushed under generation zero.
    pub fn invalidate_net(&mut self, net: NetId) {
        let g = &mut self.net_gen[net.index()];
        *g = g
            .checked_add(1)
            .expect("scoreboard generation counter overflowed");
        let heaps = std::mem::take(&mut self.net_heaps[net.index()]);
        for &h in &heaps {
            self.dirty_shard_of_heap(h as usize);
        }
    }

    /// Declares that `channel`'s aggregates moved: the raw entries of
    /// its heap are all still valid, but the shard's cached minimum was
    /// composed under the old aggregates and must be recomposed.
    pub fn refresh_channel(&mut self, channel: ChannelId) {
        self.dirty_shard_of_heap(channel.index());
    }

    /// Pushes a raw candidate key into its channel's heap (the
    /// channelless heap when `channel` is `None`), stamped with the
    /// net's current generation.
    pub fn push(&mut self, key: EdgeKey, channel: Option<ChannelId>) {
        let stamp = self.net_gen[key.net.index()];
        let heap = self.heap_of(channel);
        self.heaps[heap].push(Entry {
            key,
            stamp,
            order: self.order,
        });
        let list = &mut self.net_heaps[key.net.index()];
        if !list.contains(&(heap as u32)) {
            list.push(heap as u32);
        }
        self.dirty_shard_of_heap(heap);
    }

    /// Drains stale entries off the top of heap `h`, returning how many
    /// were discarded. Afterwards the heap's top (if any) is live.
    fn drain_stale_top(&mut self, h: usize) -> u64 {
        let mut stale = 0u64;
        while let Some(e) = self.heaps[h].peek() {
            if e.stamp == self.net_gen[e.key.net.index()] {
                break;
            }
            self.heaps[h].pop();
            stale += 1;
        }
        stale
    }

    /// Rebuilds the cached minimum of shard `s`: drains stale heap
    /// tops, composes each live top under the current aggregates (one
    /// aggregate read per non-empty heap) and takes the strict-less
    /// minimum in ascending heap index. Returns the stale-drain count.
    fn rebuild_shard<P: Probe>(&mut self, s: usize, density: &DensityMap, probe: &mut P) -> u64 {
        if P::ENABLED {
            probe.count(Counter::ShardRebuild, 1);
        }
        let mut stale = 0u64;
        let mut min: Option<(u32, EdgeKey)> = None;
        let heaps = std::mem::take(&mut self.shard_heaps[s]);
        for &h in &heaps {
            stale += self.drain_stale_top(h as usize);
            let Some(raw) = self.heaps[h as usize].peek().map(|e| e.key) else {
                continue;
            };
            if P::ENABLED {
                probe.count(Counter::DensityAggregateQuery, 1);
            }
            let composed = self.compose(h as usize, raw, density);
            let better = match &min {
                None => true,
                Some((_, b)) => compare(&composed, b, self.order) == Ordering::Less,
            };
            if better {
                min = Some((h, composed));
            }
        }
        self.shard_heaps[s] = heaps;
        self.cache[s] = ShardCache { valid: true, min };
        stale
    }

    /// Pops the best *valid* candidate — the minimum **composed** key
    /// over all live entries under the current aggregates — discarding
    /// stale entries, or `None` when no valid candidate remains.
    pub fn pop_valid(&mut self, density: &DensityMap) -> Option<EdgeKey> {
        self.pop_valid_probed(density, &mut NoopProbe)
    }

    /// [`Scoreboard::pop_valid`] with instrumentation: every pop is
    /// counted ([`Counter::HeapPop`]), stale discards additionally as
    /// [`Counter::StaleHeapPop`], the discards preceding the answer are
    /// one [`Hist::StalePopsPerSelection`] observation, and every shard
    /// whose cached minimum had to be rebuilt counts one
    /// [`Counter::ShardRebuild`] (shards with no fresh entries are
    /// skipped — their cache is still valid).
    ///
    /// The tournament scans cached shard minima in ascending shard
    /// index and takes a candidate only when strictly less than the
    /// best so far, so the result is a pure function of the live
    /// entries and current aggregates (see the [module docs](self)).
    pub fn pop_valid_probed<P: Probe>(
        &mut self,
        density: &DensityMap,
        probe: &mut P,
    ) -> Option<EdgeKey> {
        let mut stale = 0u64;
        for s in 0..self.cache.len() {
            if !self.cache[s].valid {
                stale += self.rebuild_shard(s, density, probe);
            }
        }
        let mut best: Option<(usize, EdgeKey)> = None;
        for c in &self.cache {
            let Some((heap, key)) = c.min else { continue };
            let better = match &best {
                None => true,
                Some((_, b)) => compare(&key, b, self.order) == Ordering::Less,
            };
            if better {
                best = Some((heap as usize, key));
            }
        }
        let out = best.map(|(heap, key)| {
            let popped = self.heaps[heap]
                .pop()
                .expect("tournament winner heap has a top entry");
            debug_assert!(
                popped.key.net == key.net && popped.key.edge == key.edge,
                "cached shard minimum diverged from its heap top"
            );
            self.dirty_shard_of_heap(heap);
            key
        });
        if P::ENABLED {
            probe.count(Counter::HeapPop, stale + u64::from(out.is_some()));
            probe.count(Counter::StaleHeapPop, stale);
            probe.sample(Hist::StalePopsPerSelection, stale);
        }
        out
    }

    /// The best composed key over the live entries of every net but
    /// `exclude` — the runner-up the decision-provenance probe compares
    /// the winner against, equal by construction to the full rescan's
    /// second-best champion.
    ///
    /// Excluded entries are popped and re-pushed verbatim (same stamp),
    /// so the live set — and with it every shard's cached minimum — is
    /// unchanged; only stale entries are (harmlessly) drained. Unprobed
    /// on purpose: provenance peeking must not perturb the heap-pop
    /// diagnostics.
    pub fn runner_up(&mut self, exclude: NetId, density: &DensityMap) -> Option<EdgeKey> {
        let mut best: Option<EdgeKey> = None;
        let mut stash: Vec<(usize, Entry)> = Vec::new();
        for h in 0..self.heaps.len() {
            while let Some(e) = self.heaps[h].peek() {
                if e.stamp != self.net_gen[e.key.net.index()] {
                    self.heaps[h].pop();
                } else if e.key.net == exclude {
                    let e = self.heaps[h].pop().expect("peeked entry pops");
                    stash.push((h, e));
                } else {
                    break;
                }
            }
            let Some(raw) = self.heaps[h].peek().map(|e| e.key) else {
                continue;
            };
            let composed = self.compose(h, raw, density);
            let better = match &best {
                None => true,
                Some(b) => compare(&composed, b, self.order) == Ordering::Less,
            };
            if better {
                best = Some(composed);
            }
        }
        for (h, e) in stash {
            self.heaps[h].push(e);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::DelayCriteria;

    fn key(net: usize, edge: u32, f_min: i32) -> EdgeKey {
        EdgeKey {
            delay: DelayCriteria::default(),
            is_trunk: true,
            f_min,
            n_min: 0,
            f_max: 0,
            n_max: 0,
            len_um: 10.0,
            net: NetId::new(net),
            edge,
        }
    }

    fn ch(c: usize) -> Option<ChannelId> {
        Some(ChannelId::new(c))
    }

    /// An empty 4-channel density map: all aggregates are zero, so
    /// composition is the identity and raw keys compare as-is.
    fn flat() -> DensityMap {
        DensityMap::new(4, 100)
    }

    /// Four channel heaps in two shards: channels 0-1 in shard 0,
    /// channels 2-3 in shard 1 (the channelless heap rides in shard 0).
    fn two_shard_map() -> ShardMap {
        ShardMap::by_channel_bands(2, 4)
    }

    #[test]
    fn pops_in_selection_order() {
        let d = flat();
        let mut sb = Scoreboard::new(3, 4, CriteriaOrder::DelayFirst);
        sb.push(key(0, 0, 5), ch(0));
        sb.push(key(1, 0, -2), ch(0));
        sb.push(key(2, 0, 1), ch(0));
        assert_eq!(sb.pop_valid(&d).map(|k| k.net), Some(NetId::new(1)));
        assert_eq!(sb.pop_valid(&d).map(|k| k.net), Some(NetId::new(2)));
        assert_eq!(sb.pop_valid(&d).map(|k| k.net), Some(NetId::new(0)));
        assert_eq!(sb.pop_valid(&d), None);
    }

    #[test]
    fn invalidation_kills_stale_entries_lazily() {
        let d = flat();
        let mut sb = Scoreboard::new(2, 4, CriteriaOrder::DelayFirst);
        sb.push(key(0, 0, -10), ch(0)); // would win…
        sb.push(key(1, 0, 3), ch(0));
        sb.invalidate_net(NetId::new(0)); // …but is now stale
        assert_eq!(sb.pop_valid(&d).map(|k| k.net), Some(NetId::new(1)));
        assert_eq!(sb.pop_valid(&d), None);
    }

    #[test]
    fn rekeying_after_invalidation_revives_a_net() {
        let d = flat();
        let mut sb = Scoreboard::new(2, 4, CriteriaOrder::DelayFirst);
        sb.push(key(0, 0, 0), ch(1));
        sb.invalidate_net(NetId::new(0));
        sb.push(key(0, 1, 7), ch(1)); // fresh key under the new generation
        let k = sb.pop_valid(&d).unwrap();
        assert_eq!((k.net, k.edge), (NetId::new(0), 1));
        assert_eq!(sb.pop_valid(&d), None);
    }

    #[test]
    fn id_tiebreaks_keep_pops_deterministic() {
        let d = flat();
        let mut sb = Scoreboard::new(1, 4, CriteriaOrder::DelayFirst);
        // Identical criteria: net/edge ids decide.
        sb.push(key(0, 2, 0), ch(2));
        sb.push(key(0, 0, 0), ch(2));
        sb.push(key(0, 1, 0), ch(2));
        let order: Vec<u32> = std::iter::from_fn(|| sb.pop_valid(&d).map(|k| k.edge)).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn tournament_pops_the_global_minimum_across_shards() {
        let d = flat();
        let mut sb = Scoreboard::with_shards(two_shard_map(), 4, CriteriaOrder::DelayFirst);
        assert_eq!(sb.num_shards(), 2);
        sb.push(key(0, 0, 4), ch(0)); // shard 0
        sb.push(key(2, 0, -1), ch(2)); // shard 1: global minimum
        sb.push(key(3, 0, 2), ch(3)); // shard 1
        sb.push(key(1, 0, 0), ch(1)); // shard 0
        let pops: Vec<usize> =
            std::iter::from_fn(|| sb.pop_valid(&d).map(|k| k.net.index())).collect();
        assert_eq!(pops, vec![2, 1, 3, 0]);
        assert!(sb.is_empty());
    }

    #[test]
    fn tournament_ties_resolve_by_total_key_order_not_shard_order() {
        // Identical criteria in both shards: the (net, edge) tiebreak of
        // `compare` decides, exactly as a single global heap would.
        let d = flat();
        let mut sb = Scoreboard::with_shards(two_shard_map(), 4, CriteriaOrder::DelayFirst);
        sb.push(key(2, 0, 0), ch(2)); // shard 1, lower net id than…
        sb.push(key(3, 0, 0), ch(3)); // …its shard 1 sibling
        sb.push(key(0, 1, 0), ch(0)); // shard 0, lowest net id of all
        let pops: Vec<usize> =
            std::iter::from_fn(|| sb.pop_valid(&d).map(|k| k.net.index())).collect();
        assert_eq!(pops, vec![0, 2, 3]);
    }

    #[test]
    fn stale_champion_of_fully_bridged_net_is_skipped_in_every_shard() {
        // A net whose last deletable edge became a bridge re-keys to *no*
        // entries: its generation bumps and nothing is re-pushed. The
        // tournament must see through the stale top of its heap.
        let d = flat();
        let mut sb = Scoreboard::with_shards(two_shard_map(), 4, CriteriaOrder::DelayFirst);
        sb.push(key(0, 0, -5), ch(0)); // shard 0: would win the tournament…
        sb.push(key(2, 0, 3), ch(2)); // shard 1
        sb.invalidate_net(NetId::new(0)); // …but its net is now fully bridged
        assert_eq!(sb.pop_valid(&d).map(|k| k.net), Some(NetId::new(2)));
        assert_eq!(sb.pop_valid(&d), None);
        assert!(sb.is_empty(), "stale entries were drained, not leaked");
    }

    #[test]
    #[should_panic(expected = "scoreboard generation counter overflowed")]
    fn generation_wraparound_is_a_loud_failure() {
        let mut sb = Scoreboard::new(1, 4, CriteriaOrder::DelayFirst);
        sb.net_gen[0] = u64::MAX;
        sb.invalidate_net(NetId::new(0));
    }

    #[test]
    fn probed_pop_counts_stale_discards_and_shard_rebuilds() {
        use crate::probe::CollectingProbe;
        let d = flat();
        let mut sb = Scoreboard::with_shards(two_shard_map(), 4, CriteriaOrder::DelayFirst);
        sb.push(key(0, 0, 1), ch(0));
        sb.push(key(0, 1, 2), ch(0));
        sb.push(key(2, 0, 5), ch(2));
        sb.invalidate_net(NetId::new(0)); // both shard-0 entries go stale
        let mut probe = CollectingProbe::new();
        let got = sb.pop_valid_probed(&d, &mut probe);
        assert_eq!(got.map(|k| k.net), Some(NetId::new(2)));
        let trace = probe.finish();
        assert_eq!(trace.counter(Counter::StaleHeapPop), 2);
        assert_eq!(trace.counter(Counter::HeapPop), 3);
        // Both shards were fresh-dirty, so both rebuilt.
        assert_eq!(trace.counter(Counter::ShardRebuild), 2);
    }

    #[test]
    fn valid_shards_skip_the_rebuild() {
        use crate::probe::CollectingProbe;
        let d = flat();
        let mut sb = Scoreboard::with_shards(two_shard_map(), 4, CriteriaOrder::DelayFirst);
        sb.push(key(0, 0, 1), ch(0)); // shard 0
        sb.push(key(2, 0, 2), ch(2)); // shard 1
        sb.push(key(3, 0, 3), ch(3)); // shard 1
        let mut probe = CollectingProbe::new();
        // First pop rebuilds both shards and takes net 0 from shard 0.
        assert_eq!(
            sb.pop_valid_probed(&d, &mut probe).map(|k| k.net),
            Some(NetId::new(0))
        );
        // Second pop: only shard 0 (the winner's) is dirty; shard 1's
        // cached minimum is reused untouched.
        assert_eq!(
            sb.pop_valid_probed(&d, &mut probe).map(|k| k.net),
            Some(NetId::new(2))
        );
        let trace = probe.finish();
        assert_eq!(trace.counter(Counter::ShardRebuild), 2 + 1);
    }

    #[test]
    fn compose_at_pop_applies_current_channel_aggregates() {
        // Identical raw keys in channels 1 and 2; channel 2 carries a
        // bridge span, so its aggregates lift every composed key there.
        let mut d = flat();
        d.add_span(ChannelId::new(2), 0, 10, 3, true);
        let mut sb = Scoreboard::new(2, 4, CriteriaOrder::DelayFirst);
        sb.push(key(1, 0, 0), ch(2)); // lower net id, but composed f_min = 3
        sb.push(key(0, 0, 0), ch(1)); // composed f_min = 0: wins
        let first = sb.pop_valid(&d).unwrap();
        assert_eq!(first.net, NetId::new(0));
        assert_eq!(first.f_min, 0);
        let second = sb.pop_valid(&d).unwrap();
        assert_eq!(second.net, NetId::new(1));
        // The returned key is the *composed* one.
        assert_eq!(second.f_min, 3);
    }

    #[test]
    fn refresh_channel_recomposes_a_cached_shard_minimum() {
        let mut d = flat();
        let mut sb = Scoreboard::with_shards(two_shard_map(), 4, CriteriaOrder::DelayFirst);
        sb.push(key(0, 0, 0), ch(0)); // shard 0
        sb.push(key(2, 0, 0), ch(2)); // shard 1
                                      // First pop caches shard 1's minimum under zero aggregates.
        assert_eq!(sb.pop_valid(&d).map(|k| k.net), Some(NetId::new(0)));
        // Channel 2's aggregates move (no push into shard 1), and a new
        // shard-0 entry arrives that beats the *new* composed value.
        d.add_span(ChannelId::new(2), 0, 10, 5, true);
        sb.refresh_channel(ChannelId::new(2));
        sb.push(key(1, 0, 3), ch(1));
        let k = sb.pop_valid(&d).unwrap();
        assert_eq!(k.net, NetId::new(1), "stale composed minimum won");
        assert_eq!(sb.pop_valid(&d).map(|k| k.net), Some(NetId::new(2)));
    }

    #[test]
    fn runner_up_excludes_one_net_and_leaves_the_pool_intact() {
        let d = flat();
        let mut sb = Scoreboard::with_shards(two_shard_map(), 4, CriteriaOrder::DelayFirst);
        sb.push(key(0, 0, 1), ch(0));
        sb.push(key(0, 1, 2), ch(0));
        sb.push(key(1, 0, 5), ch(1));
        sb.push(key(2, 0, 3), ch(2));
        // Best of everything-but-net-0 is net 2, across both of net 0's
        // entries sitting above it in shard 0.
        assert_eq!(
            sb.runner_up(NetId::new(0), &d).map(|k| k.net),
            Some(NetId::new(2))
        );
        // The peek left every entry in place: pops proceed as if it
        // never happened.
        let pops: Vec<(usize, u32)> =
            std::iter::from_fn(|| sb.pop_valid(&d).map(|k| (k.net.index(), k.edge))).collect();
        assert_eq!(pops, vec![(0, 0), (0, 1), (2, 0), (1, 0)]);
    }
}
