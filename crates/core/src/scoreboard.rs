//! The candidate scoreboard: an ordered pool of [`EdgeKey`]s with
//! generation-stamped lazy invalidation.
//!
//! The deletion loop (Fig. 2 lines 04–07) needs the minimum-ranked
//! deletable edge across every in-scope net on every iteration. The
//! naive formulation recomputes every key per iteration —
//! `O(nets × edges)` key evaluations per selection, each one a Dijkstra
//! over the net's routing graph. The scoreboard instead keeps all
//! current keys in a binary heap and re-keys only *dirty* nets after a
//! deletion.
//!
//! # Invalidation contract
//!
//! The scoreboard holds one generation counter per net. Re-keying a net
//! (or invalidating it) bumps the counter; heap entries carry the
//! counter value at push time and are discarded on pop when they no
//! longer match. Consequently:
//!
//! * callers must invalidate-and-re-key every net whose key set may
//!   have changed (the *dirty set* — see `Engine::run_deletion` for the
//!   derivation from graph generations, touched channels and refreshed
//!   timing constraints);
//! * nets outside the dirty set keep their entries, which remain
//!   *exactly* the keys a full rescan would compute, because every
//!   input of [`EdgeKey`] is covered by the dirty-set definition.
//!
//! Stale entries are never purged eagerly; the heap is drained lazily,
//! so a push is `O(log n)` and a pop amortizes over the entries it
//! discards.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use bgr_netlist::NetId;

use crate::config::CriteriaOrder;
use crate::probe::{Counter, Hist, NoopProbe, Probe};
use crate::select::{compare, EdgeKey};

#[derive(Debug, Clone)]
struct Entry {
    key: EdgeKey,
    /// Owning net's scoreboard generation at push time.
    stamp: u64,
    /// Criteria order of the run (uniform across one scoreboard).
    order: CriteriaOrder,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // `BinaryHeap` is a max-heap; reverse the selection order so the
        // best (smallest) candidate surfaces at the top.
        compare(&other.key, &self.key, self.order)
    }
}

/// Ordered candidate pool over every deletable edge of the in-scope
/// nets. See the [module docs](self) for the invalidation contract.
#[derive(Debug)]
pub struct Scoreboard {
    heap: BinaryHeap<Entry>,
    net_gen: Vec<u64>,
    order: CriteriaOrder,
}

impl Scoreboard {
    /// Creates an empty scoreboard for `num_nets` nets, comparing keys
    /// with `order`.
    pub fn new(num_nets: usize, order: CriteriaOrder) -> Self {
        Self {
            heap: BinaryHeap::new(),
            net_gen: vec![0; num_nets],
            order,
        }
    }

    /// Number of live (non-stale) entries is at most this; stale entries
    /// inflate it until they are popped.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap holds no entries at all (stale or live).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The criteria order this scoreboard compares keys with.
    pub fn order(&self) -> CriteriaOrder {
        self.order
    }

    /// Invalidates every entry of `net`: bumps its generation so existing
    /// heap entries die lazily. Call before re-pushing the net's current
    /// keys.
    pub fn invalidate_net(&mut self, net: NetId) {
        self.net_gen[net.index()] += 1;
    }

    /// Pushes a candidate key, stamped with its net's current generation.
    pub fn push(&mut self, key: EdgeKey) {
        let stamp = self.net_gen[key.net.index()];
        self.heap.push(Entry {
            key,
            stamp,
            order: self.order,
        });
    }

    /// Pops the best *valid* candidate, discarding stale entries, or
    /// `None` when no valid candidate remains.
    pub fn pop_valid(&mut self) -> Option<EdgeKey> {
        self.pop_valid_probed(&mut NoopProbe)
    }

    /// [`Scoreboard::pop_valid`] with instrumentation: every pop is
    /// counted ([`Counter::HeapPop`]), stale discards additionally as
    /// [`Counter::StaleHeapPop`], and the number of discards preceding
    /// the answer is one [`Hist::StalePopsPerSelection`] observation.
    pub fn pop_valid_probed<P: Probe>(&mut self, probe: &mut P) -> Option<EdgeKey> {
        let mut stale = 0u64;
        let out = loop {
            let Some(e) = self.heap.pop() else { break None };
            if e.stamp == self.net_gen[e.key.net.index()] {
                break Some(e.key);
            }
            stale += 1;
        };
        if P::ENABLED {
            probe.count(Counter::HeapPop, stale + u64::from(out.is_some()));
            probe.count(Counter::StaleHeapPop, stale);
            probe.sample(Hist::StalePopsPerSelection, stale);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::DelayCriteria;

    fn key(net: usize, edge: u32, f_max: i32) -> EdgeKey {
        EdgeKey {
            delay: DelayCriteria::default(),
            is_trunk: true,
            f_min: 0,
            n_min: 0,
            f_max,
            n_max: 0,
            len_um: 10.0,
            net: NetId::new(net),
            edge,
        }
    }

    #[test]
    fn pops_in_selection_order() {
        let mut sb = Scoreboard::new(3, CriteriaOrder::DelayFirst);
        sb.push(key(0, 0, 5));
        sb.push(key(1, 0, -2));
        sb.push(key(2, 0, 1));
        assert_eq!(sb.pop_valid().map(|k| k.net), Some(NetId::new(1)));
        assert_eq!(sb.pop_valid().map(|k| k.net), Some(NetId::new(2)));
        assert_eq!(sb.pop_valid().map(|k| k.net), Some(NetId::new(0)));
        assert_eq!(sb.pop_valid(), None);
    }

    #[test]
    fn invalidation_kills_stale_entries_lazily() {
        let mut sb = Scoreboard::new(2, CriteriaOrder::DelayFirst);
        sb.push(key(0, 0, -10)); // would win…
        sb.push(key(1, 0, 3));
        sb.invalidate_net(NetId::new(0)); // …but is now stale
        assert_eq!(sb.pop_valid().map(|k| k.net), Some(NetId::new(1)));
        assert_eq!(sb.pop_valid(), None);
    }

    #[test]
    fn rekeying_after_invalidation_revives_a_net() {
        let mut sb = Scoreboard::new(2, CriteriaOrder::DelayFirst);
        sb.push(key(0, 0, 0));
        sb.invalidate_net(NetId::new(0));
        sb.push(key(0, 1, 7)); // fresh key under the new generation
        let k = sb.pop_valid().unwrap();
        assert_eq!((k.net, k.edge), (NetId::new(0), 1));
        assert_eq!(sb.pop_valid(), None);
    }

    #[test]
    fn id_tiebreaks_keep_pops_deterministic() {
        let mut sb = Scoreboard::new(1, CriteriaOrder::DelayFirst);
        // Identical criteria: net/edge ids decide.
        sb.push(key(0, 2, 0));
        sb.push(key(0, 0, 0));
        sb.push(key(0, 1, 0));
        let order: Vec<u32> = std::iter::from_fn(|| sb.pop_valid().map(|k| k.edge)).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }
}
