//! Router configuration.

use bgr_timing::{DelayModel, WireParams};

/// Order in which the edge-selection heuristics are compared (§3.4, §3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CriteriaOrder {
    /// The initial-routing / delay-improvement order: delay criteria
    /// (`C_d`, `Gl`, `LD`) first, then the five density conditions.
    #[default]
    DelayFirst,
    /// The area-improvement order (§3.5): `C_d` first, then the density
    /// conditions, with `Gl` and `LD` compared last.
    AreaFirst,
    /// Density conditions only (ablation A1: what a conventional
    /// area-minimizing edge-deletion router would do).
    DensityOnly,
}

/// How `select_edge` (Fig. 2 line 06) finds the best deletable edge.
///
/// Both strategies are defined to produce the **same deletion sequence**;
/// [`SelectionStrategy::FullRescan`] exists as the executable oracle for
/// differential testing and for auditing suspected scoreboard bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionStrategy {
    /// Incremental candidate scoreboard: every deletable edge's key is
    /// held in an ordered structure with generation-stamped lazy
    /// invalidation, and a deletion only re-keys the nets whose graph,
    /// partner, timing margins or touched channels actually changed.
    #[default]
    Scoreboard,
    /// The naive oracle: recompute every in-scope candidate key from
    /// scratch on every iteration (`O(nets × edges)` per selection).
    FullRescan,
}

/// Configuration for [`crate::GlobalRouter`].
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Whether the router *optimizes* under the given path constraints.
    /// When `false` (the paper's "without constraints" runs), routing uses
    /// density criteria only, but the result's timing report still
    /// evaluates the constraints for comparison.
    pub use_constraints: bool,
    /// Interconnect delay model.
    pub delay_model: DelayModel,
    /// Wire parasitics.
    pub wire: WireParams,
    /// Nominal vertical length in µm charged to a branch (pin-tap) edge.
    ///
    /// Detailed routing realizes each tap as a run from the row edge to
    /// the assigned track, so this should approximate *half the expected
    /// channel height*; an unrealistically small value makes the
    /// router's internal margins optimistic and de-fangs the timing
    /// criteria.
    pub branch_length_um: f64,
    /// Maximum passes of the constraint-violation recovery phase.
    pub recover_passes: usize,
    /// Maximum passes of the delay improvement phase.
    pub delay_passes: usize,
    /// Maximum passes of the area improvement phase.
    pub area_passes: usize,
    /// Criteria ordering for initial routing and delay phases.
    pub criteria_order: CriteriaOrder,
    /// Whether differential pairs are routed in lockstep (§4.1). Disabling
    /// routes the pair members independently (ablation A5).
    pub pair_differential: bool,
    /// Whether feedthrough assignment processes nets in ascending
    /// static-slack order (§3.1). Disabling falls back to netlist order
    /// (ablation A6); ignored when `use_constraints` is off.
    pub slack_ordering: bool,
    /// Candidate-selection implementation; the result is identical
    /// either way (see [`SelectionStrategy`]).
    pub selection: SelectionStrategy,
    /// Worker threads for the scoreboard's champion re-keying (1 =
    /// fully sequential; the `BGR_THREADS` environment variable
    /// overrides the default). Every deterministic observable —
    /// selection log, trees, track counts, trace-event stream — is
    /// byte-identical across thread counts (`tests/parallel_determinism.rs`).
    pub threads: usize,
    /// Channel-region shards of the scoreboard's candidate pool (1 =
    /// one global heap; `BGR_SHARDS` overrides the default; clamped to
    /// the channel count at run time). Like `threads`, shard count
    /// never changes the routing result.
    pub shards: usize,
}

/// Reads a positive integer from environment variable `name`, falling
/// back to `default` when unset, unparsable or zero.
fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(default)
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            use_constraints: true,
            delay_model: DelayModel::Capacitance,
            wire: WireParams::default(),
            branch_length_um: 30.0,
            recover_passes: 3,
            delay_passes: 2,
            area_passes: 1,
            criteria_order: CriteriaOrder::DelayFirst,
            pair_differential: true,
            slack_ordering: true,
            selection: SelectionStrategy::default(),
            threads: env_usize("BGR_THREADS", 1),
            shards: env_usize("BGR_SHARDS", 4),
        }
    }
}

impl RouterConfig {
    /// The paper's "without constraints" configuration: pure
    /// area-minimizing routing (delay criteria all zero), improvement
    /// phases limited to the area phase.
    pub fn unconstrained() -> Self {
        Self {
            use_constraints: false,
            recover_passes: 0,
            delay_passes: 0,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_constraints_and_phases() {
        let c = RouterConfig::default();
        assert!(c.use_constraints);
        assert!(c.recover_passes > 0 && c.delay_passes > 0 && c.area_passes > 0);
        assert_eq!(c.criteria_order, CriteriaOrder::DelayFirst);
    }

    #[test]
    fn scoreboard_is_the_default_selection() {
        assert_eq!(
            RouterConfig::default().selection,
            SelectionStrategy::Scoreboard
        );
    }

    #[test]
    fn env_usize_rejects_garbage_and_zero() {
        assert_eq!(env_usize("BGR_TEST_UNSET_VARIABLE", 3), 3);
        // Set/garbage/zero cases go through the same parse pipeline.
        std::env::set_var("BGR_TEST_THREADS_OK", " 8 ");
        std::env::set_var("BGR_TEST_THREADS_BAD", "lots");
        std::env::set_var("BGR_TEST_THREADS_ZERO", "0");
        assert_eq!(env_usize("BGR_TEST_THREADS_OK", 1), 8);
        assert_eq!(env_usize("BGR_TEST_THREADS_BAD", 2), 2);
        assert_eq!(env_usize("BGR_TEST_THREADS_ZERO", 5), 5);
        std::env::remove_var("BGR_TEST_THREADS_OK");
        std::env::remove_var("BGR_TEST_THREADS_BAD");
        std::env::remove_var("BGR_TEST_THREADS_ZERO");
    }

    #[test]
    fn unconstrained_disables_delay_phases() {
        let c = RouterConfig::unconstrained();
        assert!(!c.use_constraints);
        assert_eq!(c.recover_passes, 0);
        assert_eq!(c.delay_passes, 0);
        assert!(c.area_passes > 0);
    }
}
