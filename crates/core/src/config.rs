//! Router configuration.

use bgr_timing::{DelayModel, WireParams};

/// Order in which the edge-selection heuristics are compared (§3.4, §3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CriteriaOrder {
    /// The initial-routing / delay-improvement order: delay criteria
    /// (`C_d`, `Gl`, `LD`) first, then the five density conditions.
    #[default]
    DelayFirst,
    /// The area-improvement order (§3.5): `C_d` first, then the density
    /// conditions, with `Gl` and `LD` compared last.
    AreaFirst,
    /// Density conditions only (ablation A1: what a conventional
    /// area-minimizing edge-deletion router would do).
    DensityOnly,
}

/// How `select_edge` (Fig. 2 line 06) finds the best deletable edge.
///
/// Both strategies are defined to produce the **same deletion sequence**;
/// [`SelectionStrategy::FullRescan`] exists as the executable oracle for
/// differential testing and for auditing suspected scoreboard bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionStrategy {
    /// Incremental candidate scoreboard: every deletable edge's key is
    /// held in an ordered structure with generation-stamped lazy
    /// invalidation, and a deletion only re-keys the nets whose graph,
    /// partner, timing margins or touched channels actually changed.
    #[default]
    Scoreboard,
    /// The naive oracle: recompute every in-scope candidate key from
    /// scratch on every iteration (`O(nets × edges)` per selection).
    FullRescan,
}

/// What `route()` does when §3.5 phase-1 recovery exhausts its passes
/// with constraints still violated.
///
/// The paper's router never aborts — it always produces a routing and
/// reports whatever timing it achieved — so [`OnViolation::BestEffort`]
/// is the default: the route completes and carries a structured
/// [`crate::result::ViolationReport`]. [`OnViolation::Fail`] is the
/// strict opt-in for callers that treat residual violations as fatal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnViolation {
    /// Return [`crate::RouteError::ConstraintsUnsatisfied`] carrying the
    /// violation report.
    Fail,
    /// Finish the route and attach the report to the result
    /// (`RoutingResult::violations`).
    #[default]
    BestEffort,
}

/// Deterministic per-phase work ceilings.
///
/// Budgets are *step* counts — deletion-loop selections and
/// improvement-phase reroutes — never wall-clock, so exhaustion is a
/// pure function of the input and fires at the same point in every run:
/// the `BudgetExhausted` trace event stays in the deterministic
/// [`crate::TraceEvent`] stream without breaking the byte-identical
/// guarantee across threads, shards and selection strategies (DESIGN.md
/// §9–§11). `None` means unlimited (the default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budgets {
    /// Ceiling on deletion-loop selections during initial routing. On
    /// exhaustion the engine switches to the deterministic fallback
    /// completion path (first-deletable-edge deletion per net), which
    /// still ends in a forest of spanning trees.
    pub deletion_steps: Option<u64>,
    /// Ceiling on reroutes per improvement phase (each of recovery,
    /// delay and area improvement gets this many). On exhaustion the
    /// phase stops at a consistent state and the route continues.
    pub phase_reroutes: Option<u64>,
}

impl Budgets {
    /// No ceilings anywhere (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Whether any ceiling is set.
    pub fn any(&self) -> bool {
        self.deletion_steps.is_some() || self.phase_reroutes.is_some()
    }
}

/// How much in-flight self-auditing the router performs
/// (`RouterConfig::verify`).
///
/// The engine's self-audit rebuilds the density map and tentative
/// lengths from scratch and compares them against the incremental
/// state; divergence panics with a descriptive message (which
/// `route_checked` converts into a structured
/// [`crate::RouteError::Internal`]). Audits emit deterministic
/// [`crate::TraceEvent::AuditPassed`] / [`crate::TraceEvent::AuditStep`]
/// events, which are a pure function of the configuration and input —
/// so any fixed level keeps the byte-identical trace guarantee, and
/// [`VerifyLevel::Off`] (the default) emits nothing, leaving pre-audit
/// golden traces untouched. The *independent* result auditor
/// (`bgr_verify::audit`) runs outside the engine on the finished
/// [`crate::RoutingResult`] and needs no level at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyLevel {
    /// No in-flight audits (the default; zero overhead, unchanged
    /// traces).
    #[default]
    Off,
    /// One audit after the last routing phase.
    Final,
    /// An audit at every phase boundary.
    Phases,
    /// Phase-boundary audits plus one every `N` deletion-loop
    /// selections (`N` ≥ 1).
    Steps(u64),
}

impl VerifyLevel {
    /// Whether any auditing is enabled.
    pub fn enabled(&self) -> bool {
        !matches!(self, Self::Off)
    }

    /// Whether phase-boundary audits run (`Phases` and `Steps`).
    pub fn at_phases(&self) -> bool {
        matches!(self, Self::Phases | Self::Steps(_))
    }

    /// The deletion-step audit interval, if step audits are on.
    pub fn step_interval(&self) -> Option<u64> {
        match self {
            Self::Steps(n) => Some((*n).max(1)),
            _ => None,
        }
    }

    /// Parses the `BGR_VERIFY` grammar:
    /// `off` | `final` | `phases` | `steps[:N]` (default `N` = 32).
    /// Unparsable values fall back to `Off`.
    pub fn parse(raw: &str) -> Self {
        let v = raw.trim().to_ascii_lowercase();
        match v.as_str() {
            "final" => Self::Final,
            "phases" => Self::Phases,
            "steps" => Self::Steps(32),
            s => match s.strip_prefix("steps:") {
                Some(n) => match n.parse::<u64>() {
                    Ok(n) if n >= 1 => Self::Steps(n),
                    _ => Self::Off,
                },
                None => Self::Off,
            },
        }
    }

    /// [`VerifyLevel::parse`] of the `BGR_VERIFY` environment variable
    /// (`Off` when unset).
    fn from_env() -> Self {
        std::env::var("BGR_VERIFY")
            .map(|v| Self::parse(&v))
            .unwrap_or(Self::Off)
    }
}

/// Configuration for [`crate::GlobalRouter`].
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Whether the router *optimizes* under the given path constraints.
    /// When `false` (the paper's "without constraints" runs), routing uses
    /// density criteria only, but the result's timing report still
    /// evaluates the constraints for comparison.
    pub use_constraints: bool,
    /// Interconnect delay model.
    pub delay_model: DelayModel,
    /// Wire parasitics.
    pub wire: WireParams,
    /// Nominal vertical length in µm charged to a branch (pin-tap) edge.
    ///
    /// Detailed routing realizes each tap as a run from the row edge to
    /// the assigned track, so this should approximate *half the expected
    /// channel height*; an unrealistically small value makes the
    /// router's internal margins optimistic and de-fangs the timing
    /// criteria.
    pub branch_length_um: f64,
    /// Maximum passes of the constraint-violation recovery phase.
    pub recover_passes: usize,
    /// Maximum passes of the delay improvement phase.
    pub delay_passes: usize,
    /// Maximum passes of the area improvement phase.
    pub area_passes: usize,
    /// Criteria ordering for initial routing and delay phases.
    pub criteria_order: CriteriaOrder,
    /// Whether differential pairs are routed in lockstep (§4.1). Disabling
    /// routes the pair members independently (ablation A5).
    pub pair_differential: bool,
    /// Whether feedthrough assignment processes nets in ascending
    /// static-slack order (§3.1). Disabling falls back to netlist order
    /// (ablation A6); ignored when `use_constraints` is off.
    pub slack_ordering: bool,
    /// Candidate-selection implementation; the result is identical
    /// either way (see [`SelectionStrategy`]).
    pub selection: SelectionStrategy,
    /// Worker threads for the scoreboard's champion re-keying (1 =
    /// fully sequential; the `BGR_THREADS` environment variable
    /// overrides the default). Every deterministic observable —
    /// selection log, trees, track counts, trace-event stream — is
    /// byte-identical across thread counts (`tests/parallel_determinism.rs`).
    pub threads: usize,
    /// Channel-region shards of the scoreboard's candidate pool (1 =
    /// one global heap; `BGR_SHARDS` overrides the default; clamped to
    /// the channel count at run time). Like `threads`, shard count
    /// never changes the routing result.
    pub shards: usize,
    /// Degradation policy when recovery leaves residual violations.
    pub on_violation: OnViolation,
    /// In-flight self-audit level (see [`VerifyLevel`]; the
    /// `BGR_VERIFY` environment variable overrides the default).
    pub verify: VerifyLevel,
    /// Deterministic per-phase step ceilings (see [`Budgets`]).
    pub budgets: Budgets,
    /// Optional wall-clock deadline for the whole route, measured from
    /// `route()` entry. Unlike [`Budgets`] this is inherently
    /// machine-dependent: firings are checked only between improvement
    /// reroutes, reported through the *diagnostics* side
    /// (`Counter::DeadlineStop`) and never through the deterministic
    /// event stream — a route where the deadline fires is explicitly
    /// outside the byte-identical-trace guarantee (DESIGN.md §11).
    pub deadline: Option<std::time::Duration>,
}

/// Reads a positive integer from environment variable `name`, falling
/// back to `default` when unset, unparsable or zero.
fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(default)
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            use_constraints: true,
            delay_model: DelayModel::Capacitance,
            wire: WireParams::default(),
            branch_length_um: 30.0,
            recover_passes: 3,
            delay_passes: 2,
            area_passes: 1,
            criteria_order: CriteriaOrder::DelayFirst,
            pair_differential: true,
            slack_ordering: true,
            selection: SelectionStrategy::default(),
            threads: env_usize("BGR_THREADS", 1),
            shards: env_usize("BGR_SHARDS", 4),
            on_violation: OnViolation::default(),
            verify: VerifyLevel::from_env(),
            budgets: Budgets::default(),
            deadline: None,
        }
    }
}

impl RouterConfig {
    /// The paper's "without constraints" configuration: pure
    /// area-minimizing routing (delay criteria all zero), improvement
    /// phases limited to the area phase.
    pub fn unconstrained() -> Self {
        Self {
            use_constraints: false,
            recover_passes: 0,
            delay_passes: 0,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_constraints_and_phases() {
        let c = RouterConfig::default();
        assert!(c.use_constraints);
        assert!(c.recover_passes > 0 && c.delay_passes > 0 && c.area_passes > 0);
        assert_eq!(c.criteria_order, CriteriaOrder::DelayFirst);
    }

    #[test]
    fn scoreboard_is_the_default_selection() {
        assert_eq!(
            RouterConfig::default().selection,
            SelectionStrategy::Scoreboard
        );
    }

    #[test]
    fn env_usize_rejects_garbage_and_zero() {
        assert_eq!(env_usize("BGR_TEST_UNSET_VARIABLE", 3), 3);
        // Set/garbage/zero cases go through the same parse pipeline.
        std::env::set_var("BGR_TEST_THREADS_OK", " 8 ");
        std::env::set_var("BGR_TEST_THREADS_BAD", "lots");
        std::env::set_var("BGR_TEST_THREADS_ZERO", "0");
        assert_eq!(env_usize("BGR_TEST_THREADS_OK", 1), 8);
        assert_eq!(env_usize("BGR_TEST_THREADS_BAD", 2), 2);
        assert_eq!(env_usize("BGR_TEST_THREADS_ZERO", 5), 5);
        std::env::remove_var("BGR_TEST_THREADS_OK");
        std::env::remove_var("BGR_TEST_THREADS_BAD");
        std::env::remove_var("BGR_TEST_THREADS_ZERO");
    }

    #[test]
    fn default_is_best_effort_with_unlimited_budgets() {
        let c = RouterConfig::default();
        assert_eq!(c.on_violation, OnViolation::BestEffort);
        assert!(!c.budgets.any());
        assert!(c.deadline.is_none());
        let b = Budgets {
            deletion_steps: Some(10),
            ..Budgets::unlimited()
        };
        assert!(b.any());
    }

    #[test]
    fn verify_level_parses_the_env_grammar() {
        assert_eq!(VerifyLevel::default(), VerifyLevel::Off);
        assert!(!VerifyLevel::Off.enabled());
        assert!(VerifyLevel::Final.enabled() && !VerifyLevel::Final.at_phases());
        assert!(VerifyLevel::Phases.at_phases());
        assert_eq!(VerifyLevel::Phases.step_interval(), None);
        assert_eq!(VerifyLevel::Steps(8).step_interval(), Some(8));
        assert_eq!(VerifyLevel::Steps(0).step_interval(), Some(1));
        for (raw, want) in [
            ("final", VerifyLevel::Final),
            (" Phases ", VerifyLevel::Phases),
            ("steps", VerifyLevel::Steps(32)),
            ("steps:7", VerifyLevel::Steps(7)),
            ("steps:0", VerifyLevel::Off),
            ("garbage", VerifyLevel::Off),
            ("off", VerifyLevel::Off),
        ] {
            assert_eq!(VerifyLevel::parse(raw), want, "input {raw:?}");
        }
    }

    #[test]
    fn unconstrained_disables_delay_phases() {
        let c = RouterConfig::unconstrained();
        assert!(!c.use_constraints);
        assert_eq!(c.recover_passes, 0);
        assert_eq!(c.delay_passes, 0);
        assert!(c.area_passes > 0);
    }
}
