//! A conventional *sequential* global router, as a baseline.
//!
//! The paper's contribution is that "the interconnection wiring of all
//! nets is determined concurrently" by global edge deletion. The classic
//! alternative — which routers of the era (and the paper's references
//! \[6\]–\[9\]) used — routes **one net at a time**: each net takes its
//! shortest tree under a congestion penalty on the channel columns other
//! nets have already claimed.
//!
//! This module implements that baseline on the same substrates
//! (feedthrough assignment, routing graphs, channel measurement), so
//! `bgr-bench` can compare the two approaches apples-to-apples.

use bgr_layout::Placement;
use bgr_netlist::{Circuit, NetId};
use bgr_timing::{nets_by_ascending_slack, PathConstraint};

use crate::config::RouterConfig;
use crate::density::DensityMap;
use crate::error::RouteError;
use crate::feedcell::assign_with_insertion;
use crate::graph::{REdgeKind, RoutingGraph};
use crate::result::{NetTree, RouteStats, RoutingResult, TimingReport};
use crate::router::Routed;
use crate::tentative::tentative_tree_with;

/// Configuration for the sequential baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialConfig {
    /// Shared options (delay model, wire, branch length, slack ordering).
    pub base: RouterConfig,
    /// Congestion penalty: extra µm charged per unit of existing density
    /// under a trunk edge's interval.
    pub congestion_penalty_um: f64,
}

impl Default for SequentialConfig {
    fn default() -> Self {
        Self {
            base: RouterConfig::default(),
            congestion_penalty_um: 16.0,
        }
    }
}

/// The sequential (net-at-a-time) baseline router.
#[derive(Debug, Clone, Default)]
pub struct SequentialRouter {
    config: SequentialConfig,
}

impl SequentialRouter {
    /// Creates a baseline router.
    pub fn new(config: SequentialConfig) -> Self {
        Self { config }
    }

    /// Routes every net once, in slack order, committing each net's
    /// congestion before the next is routed.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`crate::GlobalRouter::route`].
    pub fn route(
        &self,
        mut circuit: Circuit,
        mut placement: Placement,
        constraints: Vec<PathConstraint>,
    ) -> Result<Routed, RouteError> {
        let t_start = std::time::Instant::now();
        circuit.validate()?;
        placement.validate(&circuit)?;
        let order: Vec<NetId> = if self.config.base.use_constraints {
            nets_by_ascending_slack(&circuit, &constraints)?
        } else {
            circuit.net_ids().collect()
        };
        let pairs = crate::diffpair::PairMap::build(&circuit);
        let plan = assign_with_insertion(
            &mut circuit,
            &mut placement,
            &order,
            &pairs,
            8,
            &mut crate::probe::NoopProbe,
        )?;

        let mut graphs: Vec<RoutingGraph> = circuit
            .net_ids()
            .map(|n| {
                RoutingGraph::build(
                    &circuit,
                    &placement,
                    n,
                    &plan.feeds[n.index()],
                    self.config.base.branch_length_um,
                )
            })
            .collect();
        for (i, g) in graphs.iter().enumerate() {
            if !g.terminals_connected() {
                return Err(RouteError::DisconnectedNet(NetId::new(i)));
            }
        }
        let mut density = DensityMap::new(
            placement.num_channels(),
            placement.width_pitches().max(1) as usize,
        );
        let lambda = self.config.congestion_penalty_um;
        for &net in &order {
            let g = &mut graphs[net.index()];
            g.prune_dangling();
            // Shortest tree under the congestion penalty.
            let edges_snapshot: Vec<crate::graph::REdge> = g.edges().to_vec();
            let density_ref = &density;
            let tree = tentative_tree_with(g, None, |e| {
                let edge = &edges_snapshot[e as usize];
                match edge.kind {
                    REdgeKind::Trunk { channel } => {
                        let d = density_ref.edge_density(channel, edge.x1, edge.x2);
                        edge.len_um + lambda * d.d_max as f64
                    }
                    _ => edge.len_um,
                }
            })
            .ok_or(RouteError::DisconnectedNet(net))?;
            let mut mask = vec![false; g.edges().len()];
            for e in &tree.edges {
                mask[*e as usize] = true;
            }
            g.set_alive_mask(&mask);
            for e in g.alive_edges() {
                let edge = g.edges()[e as usize];
                if let REdgeKind::Trunk { channel } = edge.kind {
                    density.add_span(channel, edge.x1, edge.x2, g.width() as i32, true);
                }
            }
        }
        // Measurement identical to the main router.
        let trees: Vec<NetTree> = graphs.iter().map(NetTree::from_graph).collect();
        let net_lengths_um: Vec<f64> = graphs.iter().map(|g| g.alive_length_um()).collect();
        let total_length_um = net_lengths_um.iter().sum();
        let timing = TimingReport::evaluate(
            &circuit,
            &constraints,
            self.config.base.delay_model,
            self.config.base.wire,
            &net_lengths_um,
        )?;
        let stats = RouteStats {
            feed_cells_inserted: plan.inserted_cells,
            widened_pitches: plan.widened,
            total: t_start.elapsed(),
            ..RouteStats::default()
        };
        // `d_m` was used as commit storage; `C_M == C_m` here.
        let result = RoutingResult {
            trees,
            channel_tracks: density.channel_maxima(),
            net_lengths_um,
            total_length_um,
            timing,
            violations: None,
            stats,
        };
        Ok(Routed {
            circuit,
            placement,
            result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::GlobalRouter;
    use bgr_layout::{Geometry, PlacementBuilder};
    use bgr_netlist::{CellId, CellLibrary, CircuitBuilder};

    fn testcase() -> (Circuit, Placement) {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let y = cb.add_output_pad("y");
        let cells: Vec<CellId> = (0..4).map(|i| cb.add_cell(format!("u{i}"), inv)).collect();
        cb.add_net("n0", cb.pad_term(a), [cb.cell_term(cells[0], "A").unwrap()])
            .unwrap();
        for w in cells.windows(2) {
            cb.add_net(
                format!("n{:?}", w[1]),
                cb.cell_term(w[0], "Y").unwrap(),
                [cb.cell_term(w[1], "A").unwrap()],
            )
            .unwrap();
        }
        cb.add_net("ny", cb.cell_term(cells[3], "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        let circuit = cb.finish().unwrap();
        let mut pb = PlacementBuilder::new(Geometry::default(), 1);
        for &c in &cells {
            pb.append_with_width(0, c, 3);
        }
        pb.place_pad_bottom(a, 0);
        pb.place_pad_top(y, 11);
        let placement = pb.finish(&circuit).unwrap();
        (circuit, placement)
    }

    #[test]
    fn sequential_routes_all_nets_to_trees() {
        let (circuit, placement) = testcase();
        let routed = SequentialRouter::new(SequentialConfig::default())
            .route(circuit, placement, vec![])
            .unwrap();
        assert_eq!(routed.result.trees.len(), 5);
        for tree in &routed.result.trees {
            assert!(tree.length_um > 0.0);
        }
        assert!(routed.result.channel_tracks.iter().sum::<i32>() > 0);
    }

    #[test]
    fn congestion_penalty_spreads_nets() {
        // Parallel 2-pin nets in one row: with zero penalty they may all
        // pick the same channel; with a penalty, density spreads across
        // the two channels.
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let mut drivers = Vec::new();
        let mut sinks = Vec::new();
        for i in 0..4 {
            drivers.push(cb.add_cell(format!("d{i}"), inv));
            sinks.push(cb.add_cell(format!("s{i}"), inv));
        }
        for i in 0..4 {
            cb.add_net(
                format!("n{i}"),
                cb.cell_term(drivers[i], "Y").unwrap(),
                [cb.cell_term(sinks[i], "A").unwrap()],
            )
            .unwrap();
        }
        let circuit = cb.finish().unwrap();
        let mut pb = PlacementBuilder::new(Geometry::default(), 1);
        for i in 0..4 {
            pb.place_at(0, drivers[i], i as i32 * 3, 3).unwrap();
            pb.place_at(0, sinks[i], 20 + i as i32 * 3, 3).unwrap();
        }
        let placement = pb.finish(&circuit).unwrap();
        let spread = SequentialRouter::new(SequentialConfig {
            congestion_penalty_um: 1000.0,
            ..SequentialConfig::default()
        })
        .route(circuit.clone(), placement.clone(), vec![])
        .unwrap();
        // With a huge penalty, both channels get used.
        let used: Vec<i32> = spread.result.channel_tracks.clone();
        assert!(used[0] > 0 && used[1] > 0, "density spread: {used:?}");
        assert!(used[0] <= 3 && used[1] <= 3);
    }

    #[test]
    fn edge_deletion_router_not_worse_on_tracks() {
        let (circuit, placement) = testcase();
        let seq = SequentialRouter::new(SequentialConfig::default())
            .route(circuit.clone(), placement.clone(), vec![])
            .unwrap();
        let del = GlobalRouter::new(RouterConfig::unconstrained())
            .route(circuit, placement, vec![])
            .unwrap();
        let seq_tracks: i32 = seq.result.channel_tracks.iter().sum();
        let del_tracks: i32 = del.result.channel_tracks.iter().sum();
        assert!(del_tracks <= seq_tracks + 1);
    }
}
