//! Feedthrough assignment (§3.1).
//!
//! For every net that must pass through cell rows, one feedthrough
//! position per crossed row is chosen by searching outward from the mean
//! x of the net's terminals; assignments across multiple rows prefer a
//! common column. Nets are processed in ascending static-slack order.
//! Differential pairs are treated as double-width windows (§4.1); the
//! second net of the pair gets the right half of the window.

use bgr_layout::{FlagPolicy, Placement, SlotRange, SlotStore, TermSite};
use bgr_netlist::{AccessSide, Circuit, NetId};

use crate::diffpair::PairMap;

/// One unmet feedthrough requirement: `width` adjacent slots in `row`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shortfall {
    /// The net that could not be assigned.
    pub net: NetId,
    /// Row missing capacity.
    pub row: usize,
    /// Effective window width in pitches (doubled for diff pairs).
    pub width: u32,
}

/// Result of one assignment pass.
#[derive(Debug, Clone, Default)]
pub struct AssignOutcome {
    /// Per net: assigned `(row, x)` feedthrough points (x = the net's own
    /// column start).
    pub feeds: Vec<Vec<(usize, i32)>>,
    /// Per net: occupied slot ranges (primary nets only; used for width
    /// flagging by feed-cell insertion).
    pub ranges: Vec<Vec<SlotRange>>,
    /// Unmet requirements.
    pub failures: Vec<Shortfall>,
}

/// Rows a net must cross with a feedthrough.
///
/// Each terminal reaches a channel interval `[lo_t, hi_t]`
/// (one channel for single-side pins and boundary pads, two for
/// both-side pins). Connecting all terminals requires the channel
/// interval `[min_t hi_t, max_t lo_t]` to be linked; crossing row `r`
/// links channels `r` and `r+1`. Rows where the net has a both-side pin
/// cross "for free" through the pin itself and are excluded.
pub fn rows_to_cross(circuit: &Circuit, placement: &Placement, net: NetId) -> Vec<usize> {
    let num_rows = placement.num_rows();
    let mut min_hi = usize::MAX;
    let mut max_lo = 0usize;
    let mut free_rows = vec![false; num_rows];
    for term in circuit.net(net).terms() {
        let pos = placement.term_pos(circuit, term);
        let channels = pos.channels(num_rows);
        // TermPos::channels returns 1 channel for single-side pins and
        // boundary pads, 2 for both-side pins — never 0.
        let lo = channels
            .iter()
            .map(|c| c.index())
            .min()
            .expect("every terminal site reaches at least one channel");
        let hi = channels
            .iter()
            .map(|c| c.index())
            .max()
            .expect("every terminal site reaches at least one channel");
        min_hi = min_hi.min(hi);
        max_lo = max_lo.max(lo);
        if let TermSite::Cell { row, access } = pos.site {
            if access == AccessSide::Both {
                free_rows[row] = true;
            }
        }
    }
    if min_hi >= max_lo {
        return Vec::new();
    }
    (min_hi..max_lo).filter(|&r| !free_rows[r]).collect()
}

/// Mean terminal x of a net, in pitches.
pub fn mean_terminal_x(circuit: &Circuit, placement: &Placement, net: NetId) -> i32 {
    let mut sum = 0i64;
    let mut count = 0i64;
    for term in circuit.net(net).terms() {
        sum += placement.term_pos(circuit, term).x as i64;
        count += 1;
    }
    (sum / count.max(1)) as i32
}

/// Runs one assignment pass over `order`ed nets.
///
/// Secondary nets of differential pairs are skipped (their primary
/// allocates the double-width window and fills in their feeds).
pub fn assign_feedthroughs(
    circuit: &Circuit,
    placement: &Placement,
    slots: &mut SlotStore,
    order: &[NetId],
    pairs: &PairMap,
    policy: FlagPolicy,
) -> AssignOutcome {
    let n = circuit.nets().len();
    let mut out = AssignOutcome {
        feeds: vec![Vec::new(); n],
        ranges: vec![Vec::new(); n],
        failures: Vec::new(),
    };
    for &net in order {
        if pairs.is_secondary(net) {
            continue;
        }
        let partner = pairs.partner_of(net);
        let mut rows = rows_to_cross(circuit, placement, net);
        if let Some(p) = partner {
            for r in rows_to_cross(circuit, placement, p) {
                if !rows.contains(&r) {
                    rows.push(r);
                }
            }
            rows.sort_unstable();
        }
        if rows.is_empty() {
            continue;
        }
        let own_width = circuit.net(net).width_pitches();
        let width = own_width * if partner.is_some() { 2 } else { 1 };
        let mut target = mean_terminal_x(circuit, placement, net);
        if let Some(p) = partner {
            target = (target + mean_terminal_x(circuit, placement, p)) / 2;
        }
        let mut aligned_x: Option<i32> = None;
        for row in rows {
            let range = aligned_x
                .and_then(|x| slots.find_at_x(row, width, x, policy))
                .or_else(|| slots.find_adjacent_free(row, width, target, policy));
            match range {
                Some(r) => {
                    slots.occupy(r, net);
                    let x = slots.x_of(bgr_layout::SlotId {
                        row: r.row,
                        idx: r.start,
                    });
                    aligned_x.get_or_insert(x);
                    out.feeds[net.index()].push((row, x));
                    out.ranges[net.index()].push(r);
                    if let Some(p) = partner {
                        out.feeds[p.index()].push((row, x + own_width as i32));
                    }
                }
                None => out.failures.push(Shortfall { net, row, width }),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_layout::{Geometry, PlacementBuilder};
    use bgr_netlist::{CellId, CellLibrary, CircuitBuilder};

    /// u1 in row 0, u2 in row 2, a feed cell in row 1 at x=6.
    fn three_rows() -> (Circuit, Placement, NetId) {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let feed = lib.kind_by_name("FEED1").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let y = cb.add_output_pad("y");
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", inv);
        let f0 = cb.add_cell("f0", feed);
        let f1 = cb.add_cell("f1", feed);
        cb.add_net("n0", cb.pad_term(a), [cb.cell_term(u1, "A").unwrap()])
            .unwrap();
        let net = cb
            .add_net(
                "n1",
                cb.cell_term(u1, "Y").unwrap(),
                [cb.cell_term(u2, "A").unwrap()],
            )
            .unwrap();
        cb.add_net("n2", cb.cell_term(u2, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        let circuit = cb.finish().unwrap();
        let mut pb = PlacementBuilder::new(Geometry::default(), 3);
        pb.append_with_width(0, CellId::new(0), 3); // u1
        pb.append_with_width(2, CellId::new(1), 3); // u2
        pb.place_at(1, f0, 6, 1).unwrap();
        pb.place_at(1, f1, 7, 1).unwrap();
        let _ = f1;
        pb.place_pad_bottom(a, 0);
        pb.place_pad_top(y, 5);
        let placement = pb.finish(&circuit).unwrap();
        (circuit, placement, net)
    }

    #[test]
    fn rows_to_cross_spans_between_terminals() {
        let (circuit, placement, net) = three_rows();
        // u1 in row 0 (channels 0,1), u2 in row 2 (channels 2,3):
        // interval [1, 2) -> row 1 only.
        assert_eq!(rows_to_cross(&circuit, &placement, net), vec![1]);
        // n0: pad (channel 0) to u1 row 0 (Both): row 0 is bridged by the
        // pin -> nothing to cross.
        assert!(rows_to_cross(&circuit, &placement, NetId::new(0)).is_empty());
    }

    #[test]
    fn assignment_picks_nearest_slot() {
        let (circuit, placement, net) = three_rows();
        let mut slots = SlotStore::from_placement(&circuit, &placement);
        let pairs = PairMap::build(&circuit);
        let order: Vec<NetId> = circuit.net_ids().collect();
        let out = assign_feedthroughs(
            &circuit,
            &placement,
            &mut slots,
            &order,
            &pairs,
            FlagPolicy::Ignore,
        );
        assert!(out.failures.is_empty());
        // Terminal mean x ≈ (2 + 3) / 2 = 2; nearest slot in row 1 is the
        // feed at x=6.
        assert_eq!(out.feeds[net.index()], vec![(1, 6)]);
    }

    #[test]
    fn exhaustion_reports_shortfall() {
        let (circuit, placement, net) = three_rows();
        let mut slots = SlotStore::from_placement(&circuit, &placement);
        let pairs = PairMap::build(&circuit);
        // Occupy both slots in row 1 up front.
        let r = slots
            .find_adjacent_free(1, 2, 0, FlagPolicy::Ignore)
            .unwrap();
        slots.occupy(r, NetId::new(0));
        let order = vec![net];
        let out = assign_feedthroughs(
            &circuit,
            &placement,
            &mut slots,
            &order,
            &pairs,
            FlagPolicy::Ignore,
        );
        assert_eq!(
            out.failures,
            vec![Shortfall {
                net,
                row: 1,
                width: 1
            }]
        );
    }

    #[test]
    fn multi_row_assignments_align() {
        // Net from row 0 to row 3 with feed slots in rows 1 and 2 at
        // matching and non-matching columns: alignment prefers the same x.
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let feed = lib.kind_by_name("FEED1").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", inv);
        let fa1 = cb.add_cell("fa1", feed);
        let fa2 = cb.add_cell("fa2", feed);
        let fb1 = cb.add_cell("fb1", feed);
        let fb2 = cb.add_cell("fb2", feed);
        let net = cb
            .add_net(
                "n",
                cb.cell_term(u1, "Y").unwrap(),
                [cb.cell_term(u2, "A").unwrap()],
            )
            .unwrap();
        let circuit = cb.finish().unwrap();
        let mut pb = PlacementBuilder::new(Geometry::default(), 4);
        pb.append_with_width(0, u1, 3);
        pb.append_with_width(3, u2, 3);
        // Row 1: slots at x=0 and x=9. Row 2: slots at x=9 and x=20.
        pb.place_at(1, fa1, 0, 1).unwrap();
        pb.place_at(1, fa2, 9, 1).unwrap();
        pb.place_at(2, fb1, 9, 1).unwrap();
        pb.place_at(2, fb2, 20, 1).unwrap();
        let placement = pb.finish(&circuit).unwrap();
        let mut slots = SlotStore::from_placement(&circuit, &placement);
        let pairs = PairMap::build(&circuit);
        let out = assign_feedthroughs(
            &circuit,
            &placement,
            &mut slots,
            &[net],
            &pairs,
            FlagPolicy::Ignore,
        );
        assert!(out.failures.is_empty());
        // Mean x = 2; row 1 picks x=0 (closest to 2). Row 2 has no slot at
        // x=0, falls back to nearest (x=9).
        assert_eq!(out.feeds[net.index()], vec![(1, 0), (2, 9)]);
    }

    use bgr_layout::Placement;
    use bgr_netlist::Circuit;
}
