//! Differential drive pairs (§4.1).
//!
//! "When two nets are specified as a differential drive pair, those nets
//! must be routed physically parallel to each other." The pair is treated
//! as a 2-pitch window in feedthrough assignment; afterwards a one-to-one
//! edge correspondence is established **iff** the two routing graphs are
//! *homogeneous* — same structure with the same relative positions — and
//! every deletion then cascades to the corresponding edge of the partner.

use bgr_netlist::{Circuit, NetId};

use crate::graph::{REdgeKind, RVertKind, RoutingGraph};

/// Partner lookup for differential pairs.
#[derive(Debug, Clone, Default)]
pub struct PairMap {
    partner: Vec<Option<NetId>>,
    secondary: Vec<bool>,
}

impl PairMap {
    /// Builds the map from a circuit's declared pairs. The first net of
    /// each stored pair is the *primary* (it drives feedthrough
    /// assignment); the second is *secondary*.
    pub fn build(circuit: &Circuit) -> Self {
        let n = circuit.nets().len();
        let mut map = Self {
            partner: vec![None; n],
            secondary: vec![false; n],
        };
        for &(a, b) in circuit.diff_pairs() {
            map.partner[a.index()] = Some(b);
            map.partner[b.index()] = Some(a);
            map.secondary[b.index()] = true;
        }
        map
    }

    /// The partner of `net`, if paired.
    pub fn partner_of(&self, net: NetId) -> Option<NetId> {
        self.partner[net.index()]
    }

    /// Whether `net` is the secondary member of a pair.
    pub fn is_secondary(&self, net: NetId) -> bool {
        self.secondary[net.index()]
    }
}

fn vert_class(kind: RVertKind) -> (u8, u32, u32) {
    match kind {
        RVertKind::Terminal(_) => (0, 0, 0),
        RVertKind::TermTap { channel, .. } => (1, channel.index() as u32, 0),
        RVertKind::Feed { row } => (2, row, 0),
        RVertKind::FeedTap { row, channel } => (3, row, channel.index() as u32),
    }
}

/// Checks the paper's homogeneity condition: same vertex/edge structure,
/// matching vertex classes (kind + channel/row) and matching relative
/// positions (per-edge x spans).
///
/// Graphs built by [`RoutingGraph::build`] enumerate vertices and edges in
/// a deterministic order, so index-wise comparison realizes the paper's
/// "searching both graphs from driving terminal vertices".
pub fn is_homogeneous(a: &RoutingGraph, b: &RoutingGraph) -> bool {
    if a.verts().len() != b.verts().len() || a.edges().len() != b.edges().len() {
        return false;
    }
    for (va, vb) in a.verts().iter().zip(b.verts()) {
        if vert_class(va.kind) != vert_class(vb.kind) {
            return false;
        }
    }
    for (ea, eb) in a.edges().iter().zip(b.edges()) {
        if ea.a != eb.a || ea.b != eb.b {
            return false;
        }
        let kinds_match = match (ea.kind, eb.kind) {
            (REdgeKind::Trunk { channel: ca }, REdgeKind::Trunk { channel: cb }) => ca == cb,
            (REdgeKind::Branch { channel: ca }, REdgeKind::Branch { channel: cb }) => ca == cb,
            (REdgeKind::FeedHalf { row: ra }, REdgeKind::FeedHalf { row: rb }) => ra == rb,
            _ => false,
        };
        if !kinds_match {
            return false;
        }
        if (ea.x2 - ea.x1) != (eb.x2 - eb.x1) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_layout::{Geometry, PlacementBuilder};
    use bgr_netlist::{CellLibrary, CircuitBuilder};

    /// Two parallel nets between adjacent cells in one row:
    /// u1.Y -> u3.A and u2.Y -> u4.A with u2/u4 one pitch right of u1/u3.
    fn parallel_pair(shift: i32) -> (RoutingGraph, RoutingGraph, Circuit) {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let cells: Vec<_> = (0..4).map(|i| cb.add_cell(format!("u{i}"), inv)).collect();
        let p = cb
            .add_net(
                "p",
                cb.cell_term(cells[0], "Y").unwrap(),
                [cb.cell_term(cells[2], "A").unwrap()],
            )
            .unwrap();
        let n = cb
            .add_net(
                "n",
                cb.cell_term(cells[1], "Y").unwrap(),
                [cb.cell_term(cells[3], "A").unwrap()],
            )
            .unwrap();
        cb.mark_diff_pair(p, n).unwrap();
        let circuit = cb.finish().unwrap();
        let mut pb = PlacementBuilder::new(Geometry::default(), 1);
        pb.place_at(0, cells[0], 0, 3).unwrap();
        pb.place_at(0, cells[1], 3, 3).unwrap();
        pb.place_at(0, cells[2], 10, 3).unwrap();
        pb.place_at(0, cells[3], 13 + shift, 3).unwrap();
        let placement = pb.finish(&circuit).unwrap();
        let ga = RoutingGraph::build(&circuit, &placement, p, &[], 30.0);
        let gb = RoutingGraph::build(&circuit, &placement, n, &[], 30.0);
        (ga, gb, circuit)
    }

    #[test]
    fn parallel_graphs_are_homogeneous() {
        let (ga, gb, _) = parallel_pair(0);
        assert!(is_homogeneous(&ga, &gb));
    }

    #[test]
    fn shifted_spans_break_homogeneity() {
        let (ga, gb, _) = parallel_pair(2);
        assert!(!is_homogeneous(&ga, &gb));
    }

    #[test]
    fn pair_map_marks_primary_and_secondary() {
        let (_, _, circuit) = parallel_pair(0);
        let map = PairMap::build(&circuit);
        let (a, b) = circuit.diff_pairs()[0];
        assert_eq!(map.partner_of(a), Some(b));
        assert_eq!(map.partner_of(b), Some(a));
        assert!(!map.is_secondary(a));
        assert!(map.is_secondary(b));
    }

    use bgr_netlist::Circuit;
}
