//! Resumable route sessions: the pipeline of
//! [`crate::GlobalRouter::route`] sliced at deterministic boundaries,
//! with full mid-run state captured in an [`EngineSnapshot`]
//! (DESIGN.md §13).
//!
//! # Why a snapshot is small
//!
//! The deletion engine is *memoryless between selections*: the
//! scoreboard is rebuilt from the current graph/density/timing state at
//! every `run_deletion` entry, the density map is a pure function of
//! the alive trunk edges, and tentative lengths / timing margins are
//! recomputed from the graphs. So the only mutable state a mid-run
//! checkpoint must carry is
//!
//! * the post-insertion circuit and post-widening placement (feed-cell
//!   insertion mutates both, once, before the first deletion),
//! * the feedthrough assignment and estimated branch lengths (inputs
//!   to the graph rebuild),
//! * each net's **alive-edge mask**,
//! * the pipeline position ([`SessionStage`]) and the cumulative
//!   observable counters (selection log, stats, emitted-event count).
//!
//! [`RouteSession::resume`] rebuilds graphs exactly as the original
//! `GraphBuild` pass did, applies the masks, and reconstructs density,
//! bridges, lengths and margins from scratch — by construction equal to
//! the incrementally maintained state of the uninterrupted run, which
//! is precisely the invariant the engine's own self-audit
//! (`Engine::audit_state`) asserts. Diagnostics (cache stamps, graph
//! generations, wall-clock spans, heap-pop counters) are *not*
//! restored; they are outside the deterministic-observable contract.
//!
//! # Resume ≡ uninterrupted
//!
//! [`Engine::continue_deletion`] threads a global selection offset
//! through the loop, so budget stops and step audits land at the same
//! global positions whether the loop ran in one piece or many. Phase
//! markers are emitted exactly once (entry to `InitialRouting` only at
//! offset 0; improvement phases run whole-phase per step). Hence the
//! concatenation of per-slice deterministic event streams is
//! byte-identical to the uninterrupted stream — the golden-trace
//! resume harness (`tests/session_resume.rs`) proves it across
//! thread and shard counts.

use std::time::{Duration, Instant};

use bgr_layout::Placement;
use bgr_netlist::{Circuit, NetId};
use bgr_timing::{nets_by_ascending_slack, PathConstraint, Sta};

use crate::config::{OnViolation, RouterConfig, VerifyLevel};
use crate::diffpair::{is_homogeneous, PairMap};
use crate::engine::Engine;
use crate::error::RouteError;
use crate::feedcell::assign_with_insertion;
use crate::graph::RoutingGraph;
use crate::improve::{improve_area, improve_delay, recover_violate, PhaseLimits, PhaseOutcome};
use crate::probe::{Phase, Probe, RekeyCauses};
use crate::result::{NetTree, RouteStats, RoutingResult, TimingReport, ViolationReport};
use crate::router::Routed;

/// Version tag of [`EngineSnapshot`] (and its serialized checkpoint
/// form in `bgr-io`). Bump on any change to the captured state set.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Where a session stands in the routing pipeline. Checkpoint
/// boundaries are exactly the values of this enum: mid-deletion-loop
/// (with a global selection offset) or between phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStage {
    /// Inside the Fig. 2 deletion loop, `done` global selections in.
    /// `done == 0` also means the phase marker has not been emitted yet.
    InitialRouting {
        /// Global selections performed so far.
        done: u64,
    },
    /// §3.5 phase 1 (constraint-violation recovery) has not run yet.
    RecoverViolate,
    /// §3.5 phase 2 (delay improvement) has not run yet.
    ImproveDelay,
    /// §3.5 phase 3 (area improvement) has not run yet.
    ImproveArea,
    /// Every phase ran; [`RouteSession::finish`] will assemble the
    /// result.
    Finished,
}

impl SessionStage {
    /// Stable label (used by the checkpoint codec and session streams).
    pub fn label(&self) -> &'static str {
        match self {
            Self::InitialRouting { .. } => "initial_routing",
            Self::RecoverViolate => "recover_violate",
            Self::ImproveDelay => "improve_delay",
            Self::ImproveArea => "improve_area",
            Self::Finished => "finished",
        }
    }
}

/// Cumulative deterministic counters carried across suspensions —
/// the pieces of [`RouteStats`] that accumulate over the engine's
/// lifetime plus the one-shot setup stats. Wall-clock durations are
/// deliberately absent (diagnostics, not observables).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotStats {
    /// Every `(net, edge)` selection so far, in order.
    pub selection_log: Vec<(NetId, u32)>,
    /// Edges deleted (selected + cascaded + pruned).
    pub deletions: usize,
    /// Nets ripped up and rerouted.
    pub reroutes: usize,
    /// Scoreboard re-keys by cause (diagnostic, carried for continuity
    /// of the final report).
    pub rekey_causes: RekeyCauses,
    /// Engine self-audits passed.
    pub audits_passed: u64,
    /// Comparisons across passed self-audits.
    pub audit_checks: u64,
    /// Feed cells inserted during setup (§4.3).
    pub feed_cells_inserted: usize,
    /// Chip widening in pitches during setup.
    pub widened_pitches: i32,
    /// Differential pairs routed in lockstep.
    pub diff_pairs_locked: usize,
    /// Differential pairs routed independently.
    pub diff_pairs_independent: usize,
}

/// The full serializable mid-run state of a route session.
///
/// Everything needed to continue the route in a fresh process:
/// resolved configuration, the (post-insertion) design, the graph
/// rebuild inputs, per-net alive masks, the pipeline position, and the
/// cumulative observable counters. Serialized to the versioned text
/// checkpoint format by `bgr_io::write_checkpoint` /
/// `bgr_io::parse_checkpoint`.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The resolved router configuration the session runs under.
    pub config: RouterConfig,
    /// The circuit, *after* feed-cell insertion.
    pub circuit: Circuit,
    /// The placement, *after* widening.
    pub placement: Placement,
    /// The *requested* constraints (evaluated by the final report even
    /// when `config.use_constraints` is off).
    pub constraints: Vec<PathConstraint>,
    /// Per net: assigned `(row, x)` feedthrough points.
    pub feeds: Vec<Vec<(usize, i32)>>,
    /// Per channel: estimated branch (pin-tap) length in µm.
    pub branch_lens: Vec<f64>,
    /// Per net: the alive-edge mask of its routing graph.
    pub alive: Vec<Vec<bool>>,
    /// Pipeline position.
    pub stage: SessionStage,
    /// Cumulative observable counters.
    pub stats: SnapshotStats,
    /// Outcome of the recovery phase (feeds the violation report).
    pub recovery: PhaseOutcome,
    /// Deterministic events emitted so far (phase markers included) —
    /// the `seq` offset at which a resumed session's trace continues.
    pub events_emitted: u64,
}

/// What one [`RouteSession::step`] call concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// More work remains: step again, or take a checkpoint via
    /// [`RouteSession::snapshot`].
    Suspended,
    /// Every phase ran; call [`RouteSession::finish`].
    Ready,
}

/// A route in progress: the pipeline of
/// [`crate::GlobalRouter::route_with_probe`] with explicit suspension
/// points. Drive it with [`RouteSession::step`] until
/// [`StepOutcome::Ready`], then [`RouteSession::finish`]; at any
/// suspension, [`RouteSession::snapshot`] captures the state and
/// [`RouteSession::resume`] continues it — in this process or another.
#[derive(Debug)]
pub struct RouteSession<P: Probe> {
    config: RouterConfig,
    circuit: Circuit,
    placement: Placement,
    constraints: Vec<PathConstraint>,
    feeds: Vec<Vec<(usize, i32)>>,
    branch_lens: Vec<f64>,
    engine: Engine<P>,
    stage: SessionStage,
    /// Counters carried in from the checkpoint this session resumed
    /// from (all zero for a fresh start).
    base: SnapshotStats,
    recovery: PhaseOutcome,
    /// Events emitted before this session's probe existed.
    events_base: u64,
    t_start: Instant,
    initial_elapsed: Duration,
    improve_elapsed: Duration,
}

impl<P: Probe> RouteSession<P> {
    /// Validates the inputs and runs the setup pipeline — net ordering,
    /// feedthrough assignment with §4.3 insertion, two-pass graph
    /// build, STA construction, differential-pair lockstep detection —
    /// leaving the session suspended at the start of initial routing.
    ///
    /// Emits exactly the `FeedAssign` / `GraphBuild` phase events of
    /// the monolithic route.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`crate::GlobalRouter::route`] setup:
    /// validation, unreachable constraints, disconnected nets.
    pub fn start(
        config: RouterConfig,
        mut circuit: Circuit,
        mut placement: Placement,
        constraints: Vec<PathConstraint>,
        mut probe: P,
    ) -> Result<Self, RouteError> {
        let t_start = Instant::now();
        circuit.validate()?;
        placement.validate(&circuit)?;

        // §3.1: net ordering by ascending static slack (netlist order
        // when routing unconstrained or when the A6 ablation disables it).
        let order: Vec<NetId> = if config.use_constraints && config.slack_ordering {
            nets_by_ascending_slack(&circuit, &constraints)?
        } else {
            circuit.net_ids().collect()
        };

        // Fig. 2 line 01: feedthrough assignment with §4.3 insertion.
        probe.phase_enter(Phase::FeedAssign);
        let pairs = PairMap::build(&circuit);
        let plan =
            assign_with_insertion(&mut circuit, &mut placement, &order, &pairs, 8, &mut probe)?;
        probe.phase_exit(Phase::FeedAssign);
        probe.phase_enter(Phase::GraphBuild);

        // Fig. 2 line 02: routing graphs — two passes. The first pass uses
        // the nominal branch length and only serves to estimate each
        // channel's final density (full graphs hold both channel options,
        // roughly double the routed density); the second pass charges
        // each pin tap half the *expected* channel height so delay
        // estimates track what the channel router will realize.
        let nominal = vec![config.branch_length_um; placement.num_channels()];
        let est_graphs: Vec<RoutingGraph> = circuit
            .net_ids()
            .map(|n| {
                RoutingGraph::build_with_channel_branches(
                    &circuit,
                    &placement,
                    n,
                    &plan.feeds[n.index()],
                    &nominal,
                )
            })
            .collect();
        let mut est = crate::density::DensityMap::new(
            placement.num_channels(),
            placement.width_pitches().max(1) as usize,
        );
        for g in &est_graphs {
            if !g.terminals_connected() {
                continue; // reported as an error after the real build
            }
            // The tentative tree picks one channel per span, like the
            // final route will: its density is a realistic track estimate.
            let tree = crate::tentative::tentative_tree(g, None)
                .expect("connected probe graph has a tentative tree");
            for e in tree.edges {
                let edge = &g.edges()[e as usize];
                if let crate::graph::REdgeKind::Trunk { channel } = edge.kind {
                    est.add_span(channel, edge.x1, edge.x2, g.width() as i32, false);
                }
            }
        }
        let tp = placement.geometry().track_pitch_um;
        let branch_lens: Vec<f64> = est
            .channel_maxima()
            .iter()
            .map(|&tracks| (tracks as f64 / 2.0 * tp).max(config.branch_length_um))
            .collect();
        drop(est_graphs);
        let graphs: Vec<RoutingGraph> = circuit
            .net_ids()
            .map(|n| {
                RoutingGraph::build_with_channel_branches(
                    &circuit,
                    &placement,
                    n,
                    &plan.feeds[n.index()],
                    &branch_lens,
                )
            })
            .collect();
        for (i, g) in graphs.iter().enumerate() {
            if !g.terminals_connected() {
                return Err(RouteError::DisconnectedNet(NetId::new(i)));
            }
        }

        // Fig. 2 line 03: delay constraint graphs.
        let routing_constraints = if config.use_constraints {
            constraints.clone()
        } else {
            Vec::new()
        };
        let sta = Sta::new(
            &circuit,
            routing_constraints,
            config.delay_model,
            config.wire,
        )?;

        // §4.1: lockstep partners for homogeneous pairs.
        let mut partner = vec![None; circuit.nets().len()];
        let mut base = SnapshotStats {
            feed_cells_inserted: plan.inserted_cells,
            widened_pitches: plan.widened,
            ..SnapshotStats::default()
        };
        if config.pair_differential {
            for &(a, b) in circuit.diff_pairs() {
                if is_homogeneous(&graphs[a.index()], &graphs[b.index()]) {
                    partner[a.index()] = Some(b);
                    partner[b.index()] = Some(a);
                    base.diff_pairs_locked += 1;
                } else {
                    base.diff_pairs_independent += 1;
                }
            }
        } else {
            base.diff_pairs_independent = circuit.diff_pairs().len();
        }

        probe.phase_exit(Phase::GraphBuild);
        let mut engine = Engine::with_probe(
            graphs,
            sta,
            partner,
            placement.num_channels(),
            placement.width_pitches().max(1) as usize,
            probe,
        );
        engine.set_selection(config.selection);
        engine.set_parallelism(config.threads, config.shards);
        engine.set_verify(config.verify);

        Ok(Self {
            config,
            circuit,
            placement,
            constraints,
            feeds: plan.feeds,
            branch_lens,
            engine,
            stage: SessionStage::InitialRouting { done: 0 },
            base,
            recovery: PhaseOutcome::default(),
            events_base: 0,
            t_start,
            initial_elapsed: Duration::ZERO,
            improve_elapsed: Duration::ZERO,
        })
    }

    /// Restores a session from a snapshot, continuing exactly where it
    /// left off.
    ///
    /// Graphs are rebuilt from the embedded design through the same
    /// constructor as the original `GraphBuild` pass, lockstep partners
    /// re-verified on the *fresh* graphs (homogeneity is a structural
    /// property, independent of deletions), the checkpointed alive
    /// masks applied, and the engine reconstructed — density, bridges,
    /// lengths and margins all recomputed from the masks, which equals
    /// the incrementally maintained state of the uninterrupted run (see
    /// the [module docs](self)).
    ///
    /// `probe` starts empty; the snapshot's `events_emitted` is the
    /// `seq` offset at which its events continue the original stream.
    ///
    /// # Errors
    ///
    /// [`RouteError::Checkpoint`] for any inconsistency — version
    /// skew, mask/feed/branch tables not matching the embedded design,
    /// an alive set that disconnects a net. Never panics on bad input.
    pub fn resume(snapshot: EngineSnapshot, probe: P) -> Result<Self, RouteError> {
        fn bad(message: String) -> RouteError {
            RouteError::Checkpoint { message }
        }
        let EngineSnapshot {
            version,
            config,
            circuit,
            placement,
            constraints,
            feeds,
            branch_lens,
            alive,
            stage,
            stats,
            recovery,
            events_emitted,
        } = snapshot;
        if version != SNAPSHOT_VERSION {
            return Err(bad(format!(
                "snapshot version {version} unsupported (this build reads v{SNAPSHOT_VERSION})"
            )));
        }
        circuit
            .validate()
            .map_err(|e| bad(format!("embedded circuit invalid: {e}")))?;
        placement
            .validate(&circuit)
            .map_err(|e| bad(format!("embedded placement invalid: {e}")))?;
        let nets = circuit.nets().len();
        if feeds.len() != nets {
            return Err(bad(format!(
                "feed table covers {} nets, circuit has {nets}",
                feeds.len()
            )));
        }
        if alive.len() != nets {
            return Err(bad(format!(
                "alive masks cover {} nets, circuit has {nets}",
                alive.len()
            )));
        }
        if branch_lens.len() != placement.num_channels() {
            return Err(bad(format!(
                "branch lengths cover {} channels, placement has {}",
                branch_lens.len(),
                placement.num_channels()
            )));
        }
        let mut graphs: Vec<RoutingGraph> = circuit
            .net_ids()
            .map(|n| {
                RoutingGraph::build_with_channel_branches(
                    &circuit,
                    &placement,
                    n,
                    &feeds[n.index()],
                    &branch_lens,
                )
            })
            .collect();
        for (i, g) in graphs.iter().enumerate() {
            if !g.terminals_connected() {
                return Err(bad(format!(
                    "rebuilt routing graph of net {i} is disconnected \
                     (feed assignment does not fit the embedded design)"
                )));
            }
        }
        // Partner lockstep is decided on the fresh graphs, exactly as
        // the original run decided it before any deletion.
        let mut partner = vec![None; nets];
        if config.pair_differential {
            for &(a, b) in circuit.diff_pairs() {
                if is_homogeneous(&graphs[a.index()], &graphs[b.index()]) {
                    partner[a.index()] = Some(b);
                    partner[b.index()] = Some(a);
                }
            }
        }
        for (i, mask) in alive.iter().enumerate() {
            if mask.len() != graphs[i].edges().len() {
                return Err(bad(format!(
                    "alive mask of net {i} has {} bits, rebuilt graph has {} edges",
                    mask.len(),
                    graphs[i].edges().len()
                )));
            }
            graphs[i].set_alive_mask(mask);
            if !graphs[i].terminals_connected() {
                return Err(bad(format!(
                    "alive set of net {i} disconnects its terminals"
                )));
            }
        }
        let routing_constraints = if config.use_constraints {
            constraints.clone()
        } else {
            Vec::new()
        };
        let sta = Sta::new(
            &circuit,
            routing_constraints,
            config.delay_model,
            config.wire,
        )?;
        let mut engine = Engine::with_probe(
            graphs,
            sta,
            partner,
            placement.num_channels(),
            placement.width_pitches().max(1) as usize,
            probe,
        );
        engine.set_selection(config.selection);
        engine.set_parallelism(config.threads, config.shards);
        engine.set_verify(config.verify);
        Ok(Self {
            config,
            circuit,
            placement,
            constraints,
            feeds,
            branch_lens,
            engine,
            stage,
            base: stats,
            recovery,
            events_base: events_emitted,
            t_start: Instant::now(),
            initial_elapsed: Duration::ZERO,
            improve_elapsed: Duration::ZERO,
        })
    }

    /// The session's pipeline position.
    pub fn stage(&self) -> SessionStage {
        self.stage
    }

    /// The resolved configuration the session runs under.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Deterministic events emitted across the session's whole history
    /// (checkpointed slices included).
    pub fn events_emitted(&self) -> u64 {
        self.events_base + self.engine.probe().events_len() as u64
    }

    /// Global selections performed across the session's whole history.
    pub fn selections_done(&self) -> u64 {
        (self.base.selection_log.len() + self.engine.selection_log.len()) as u64
    }

    /// Per-phase limits, deadline re-anchored at this session's start
    /// (the wall-clock deadline is explicitly outside the deterministic
    /// contract — DESIGN.md §11).
    fn limits(&self) -> PhaseLimits {
        PhaseLimits {
            max_reroutes: self.config.budgets.phase_reroutes,
            deadline: self.config.deadline.map(|d| self.t_start + d),
        }
    }

    /// Advances the pipeline by one unit of work: a slice of up to
    /// `quota` deletion-loop selections (at least one; `None` runs the
    /// loop to its end or the configured budget), or one whole
    /// improvement phase. Returns [`StepOutcome::Ready`] once every
    /// phase ran.
    ///
    /// # Errors
    ///
    /// Currently none of the stepped phases error; the `Result` keeps
    /// the boundary uniform with [`RouteSession::start`] /
    /// [`RouteSession::finish`].
    pub fn step(&mut self, quota: Option<u64>) -> Result<StepOutcome, RouteError> {
        match self.stage {
            SessionStage::InitialRouting { done } => {
                // A quota of 0 still advances one selection: `done == 0`
                // doubles as "phase marker not yet emitted", so every
                // suspension must make progress.
                let quota = quota.map(|q| q.max(1));
                let budget = self.config.budgets.deletion_steps;
                let stop = match (budget, quota.map(|q| done + q)) {
                    (Some(b), Some(q)) => Some(b.min(q)),
                    (Some(b), None) => Some(b),
                    (None, q) => q,
                };
                let t0 = Instant::now();
                if done == 0 {
                    self.engine.probe_mut().phase_enter(Phase::InitialRouting);
                }
                let run =
                    self.engine
                        .continue_deletion(None, self.config.criteria_order, done, stop);
                let done = done + run.selections;
                let budget_hit = !run.complete && budget.is_some_and(|b| done >= b);
                if run.complete || budget_hit {
                    // Phase over. On budget exhaustion, the deterministic
                    // fallback completion path still ends in trees.
                    if budget_hit {
                        self.engine.fallback_complete(None, budget.unwrap_or(0));
                    }
                    self.engine.probe_mut().phase_exit(Phase::InitialRouting);
                    self.initial_elapsed += t0.elapsed();
                    debug_assert!(
                        self.engine.probe().corrupting() || self.engine.all_trees(),
                        "initial routing must reach trees"
                    );
                    if self.config.verify.at_phases() {
                        self.engine.audit_phase(Phase::InitialRouting);
                    }
                    self.stage = if self.config.use_constraints {
                        SessionStage::RecoverViolate
                    } else {
                        SessionStage::ImproveArea
                    };
                } else {
                    // Quota stop mid-loop: suspended inside the phase.
                    self.initial_elapsed += t0.elapsed();
                    self.stage = SessionStage::InitialRouting { done };
                }
                Ok(StepOutcome::Suspended)
            }
            SessionStage::RecoverViolate => {
                let t1 = Instant::now();
                let limits = self.limits();
                self.engine.probe_mut().phase_enter(Phase::RecoverViolate);
                self.recovery = recover_violate(
                    &mut self.engine,
                    self.config.recover_passes,
                    self.config.criteria_order,
                    &limits,
                );
                self.engine.probe_mut().phase_exit(Phase::RecoverViolate);
                if self.config.verify.at_phases() {
                    self.engine.audit_phase(Phase::RecoverViolate);
                }
                self.improve_elapsed += t1.elapsed();
                self.stage = SessionStage::ImproveDelay;
                Ok(StepOutcome::Suspended)
            }
            SessionStage::ImproveDelay => {
                let t1 = Instant::now();
                let limits = self.limits();
                self.engine.probe_mut().phase_enter(Phase::ImproveDelay);
                improve_delay(
                    &mut self.engine,
                    self.config.delay_passes,
                    self.config.criteria_order,
                    &limits,
                );
                self.engine.probe_mut().phase_exit(Phase::ImproveDelay);
                if self.config.verify.at_phases() {
                    self.engine.audit_phase(Phase::ImproveDelay);
                }
                self.improve_elapsed += t1.elapsed();
                self.stage = SessionStage::ImproveArea;
                Ok(StepOutcome::Suspended)
            }
            SessionStage::ImproveArea => {
                let t1 = Instant::now();
                let limits = self.limits();
                self.engine.probe_mut().phase_enter(Phase::ImproveArea);
                improve_area(&mut self.engine, self.config.area_passes, &limits);
                self.engine.probe_mut().phase_exit(Phase::ImproveArea);
                self.improve_elapsed += t1.elapsed();
                debug_assert!(
                    self.engine.probe().corrupting() || self.engine.all_trees(),
                    "improvement must preserve trees"
                );
                // `Final` audits once, silently (no trace event, so the
                // deterministic stream is identical to an unverified
                // run); `Phases`/`Steps` emit their last phase-boundary
                // event here.
                match self.config.verify {
                    VerifyLevel::Off => {}
                    VerifyLevel::Final => {
                        self.engine.audit_silent();
                    }
                    VerifyLevel::Phases | VerifyLevel::Steps(_) => {
                        self.engine.audit_phase(Phase::ImproveArea);
                    }
                }
                self.stage = SessionStage::Finished;
                Ok(StepOutcome::Ready)
            }
            SessionStage::Finished => Ok(StepOutcome::Ready),
        }
    }

    /// Captures the full session state (see [`EngineSnapshot`]). Valid
    /// at any suspension point; cheap — clones the design and the
    /// alive masks, nothing derived.
    pub fn snapshot(&self) -> EngineSnapshot {
        let mut selection_log = self.base.selection_log.clone();
        selection_log.extend_from_slice(&self.engine.selection_log);
        EngineSnapshot {
            version: SNAPSHOT_VERSION,
            config: self.config.clone(),
            circuit: self.circuit.clone(),
            placement: self.placement.clone(),
            constraints: self.constraints.clone(),
            feeds: self.feeds.clone(),
            branch_lens: self.branch_lens.clone(),
            alive: self
                .engine
                .graphs()
                .iter()
                .map(|g| g.alive_mask())
                .collect(),
            stage: self.stage,
            stats: SnapshotStats {
                selection_log,
                deletions: self.base.deletions + self.engine.deletions,
                reroutes: self.base.reroutes + self.engine.reroutes,
                rekey_causes: self.base.rekey_causes.merged(&self.engine.rekey_causes),
                audits_passed: self.base.audits_passed + self.engine.audits_passed,
                audit_checks: self.base.audit_checks + self.engine.audit_checks,
                feed_cells_inserted: self.base.feed_cells_inserted,
                widened_pitches: self.base.widened_pitches,
                diff_pairs_locked: self.base.diff_pairs_locked,
                diff_pairs_independent: self.base.diff_pairs_independent,
            },
            recovery: self.recovery,
            events_emitted: self.events_emitted(),
        }
    }

    /// Consumes the session, returning the probe — the per-slice trace
    /// extraction path after a checkpoint was taken.
    pub fn into_probe(self) -> P {
        self.engine.into_parts().3
    }

    /// Assembles the final result: violation policy, cumulative stats,
    /// trees, lengths and the timing report against the *requested*
    /// constraints. Identical to the tail of the monolithic route.
    ///
    /// # Panics
    ///
    /// Panics if called before [`RouteSession::step`] returned
    /// [`StepOutcome::Ready`].
    ///
    /// # Errors
    ///
    /// [`RouteError::ConstraintsUnsatisfied`] under
    /// [`OnViolation::Fail`] with residual violations.
    pub fn finish(self) -> Result<(Routed, P), RouteError> {
        assert!(
            matches!(self.stage, SessionStage::Finished),
            "RouteSession::finish before every phase ran (stage {})",
            self.stage.label()
        );
        // §3.5 degradation: residual violations after recovery become a
        // structured report — fatal under `OnViolation::Fail`, attached
        // to the result under `BestEffort` (DESIGN.md §11). Only checked
        // when constraints actually drove the routing.
        let violations = if self.config.use_constraints && self.engine.sta().worst_margin_ps() < 0.0
        {
            Some(ViolationReport::from_sta(
                self.engine.sta(),
                self.recovery.reroutes,
                self.recovery.passes,
            ))
        } else {
            None
        };
        if let Some(report) = &violations {
            if self.config.on_violation == OnViolation::Fail {
                return Err(RouteError::ConstraintsUnsatisfied(report.clone()));
            }
        }

        let mut engine = self.engine;
        let mut selection_log = self.base.selection_log;
        selection_log.append(&mut engine.selection_log);
        let stats = RouteStats {
            deletions: self.base.deletions + engine.deletions,
            reroutes: self.base.reroutes + engine.reroutes,
            feed_cells_inserted: self.base.feed_cells_inserted,
            widened_pitches: self.base.widened_pitches,
            diff_pairs_locked: self.base.diff_pairs_locked,
            diff_pairs_independent: self.base.diff_pairs_independent,
            selection_log,
            rekey_causes: self.base.rekey_causes.merged(&engine.rekey_causes),
            audits_passed: self.base.audits_passed + engine.audits_passed,
            audit_checks: self.base.audit_checks + engine.audit_checks,
            initial_routing: self.initial_elapsed,
            improvement: self.improve_elapsed,
            total: self.t_start.elapsed(),
        };
        let (graphs, density, _sta, probe) = engine.into_parts();

        let trees: Vec<NetTree> = graphs.iter().map(NetTree::from_graph).collect();
        let net_lengths_um: Vec<f64> = graphs.iter().map(|g| g.alive_length_um()).collect();
        let total_length_um = net_lengths_um.iter().sum();
        // The report always evaluates the *requested* constraints.
        let timing = TimingReport::evaluate(
            &self.circuit,
            &self.constraints,
            self.config.delay_model,
            self.config.wire,
            &net_lengths_um,
        )?;
        let result = RoutingResult {
            trees,
            channel_tracks: density.channel_maxima(),
            net_lengths_um,
            total_length_um,
            timing,
            violations,
            stats,
        };
        Ok((
            Routed {
                circuit: self.circuit,
                placement: self.placement,
                result,
            },
            probe,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::CollectingProbe;
    use crate::router::GlobalRouter;
    use bgr_layout::{Geometry, PlacementBuilder};
    use bgr_netlist::{CellId, CellLibrary, CircuitBuilder};

    /// The router test fixture: 2 rows, 6 nets, 2 constraints.
    fn testcase() -> (Circuit, Placement, Vec<PathConstraint>) {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let nor2 = lib.kind_by_name("NOR2").unwrap();
        let feed = lib.kind_by_name("FEED1").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let b = cb.add_input_pad("b");
        let y = cb.add_output_pad("y");
        let u0 = cb.add_cell("u0", inv);
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", nor2);
        let u3 = cb.add_cell("u3", inv);
        let _f0 = cb.add_cell("f0", feed);
        let _f1 = cb.add_cell("f1", feed);
        cb.add_net("na", cb.pad_term(a), [cb.cell_term(u0, "A").unwrap()])
            .unwrap();
        cb.add_net("nb", cb.pad_term(b), [cb.cell_term(u1, "A").unwrap()])
            .unwrap();
        cb.add_net(
            "n0",
            cb.cell_term(u0, "Y").unwrap(),
            [cb.cell_term(u2, "A").unwrap()],
        )
        .unwrap();
        cb.add_net(
            "n1",
            cb.cell_term(u1, "Y").unwrap(),
            [cb.cell_term(u2, "B").unwrap()],
        )
        .unwrap();
        cb.add_net(
            "n2",
            cb.cell_term(u2, "Y").unwrap(),
            [cb.cell_term(u3, "A").unwrap()],
        )
        .unwrap();
        cb.add_net("ny", cb.cell_term(u3, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        let cons = vec![
            PathConstraint::new("a2y", cb.pad_term(a), cb.pad_term(y), 600.0),
            PathConstraint::new("b2y", cb.pad_term(b), cb.pad_term(y), 600.0),
        ];
        let circuit = cb.finish().unwrap();
        let mut pb = PlacementBuilder::new(Geometry::default(), 2);
        pb.append_with_width(0, CellId::new(0), 3);
        pb.append_with_width(0, CellId::new(1), 3);
        pb.append_with_width(0, CellId::new(4), 1);
        pb.append_with_width(1, CellId::new(2), 4);
        pb.append_with_width(1, CellId::new(3), 3);
        pb.append_with_width(1, CellId::new(5), 1);
        pb.place_pad_bottom(a, 0);
        pb.place_pad_bottom(b, 4);
        pb.place_pad_top(y, 6);
        let placement = pb.finish(&circuit).unwrap();
        (circuit, placement, cons)
    }

    #[test]
    fn stepped_session_matches_monolithic_route() {
        let (circuit, placement, cons) = testcase();
        let config = RouterConfig::default();
        let (mono, mono_trace) = GlobalRouter::new(config.clone())
            .route_traced(circuit.clone(), placement.clone(), cons.clone())
            .unwrap();
        let mut session =
            RouteSession::start(config, circuit, placement, cons, CollectingProbe::new()).unwrap();
        let mut steps = 0;
        while session.step(Some(1)).unwrap() == StepOutcome::Suspended {
            steps += 1;
            assert!(steps < 10_000, "session failed to converge");
        }
        let (routed, probe) = session.finish().unwrap();
        assert_eq!(routed.result.trees, mono.result.trees);
        assert_eq!(
            routed.result.stats.selection_log,
            mono.result.stats.selection_log
        );
        assert_eq!(probe.finish().events, mono_trace.events);
    }

    #[test]
    fn snapshot_resume_at_every_boundary_is_equivalent() {
        let (circuit, placement, cons) = testcase();
        let config = RouterConfig::default();
        let mono = GlobalRouter::new(config.clone())
            .route(circuit.clone(), placement.clone(), cons.clone())
            .unwrap();
        let mut session =
            RouteSession::start(config, circuit, placement, cons, CollectingProbe::new()).unwrap();
        let mut hops = 0;
        loop {
            if session.step(Some(2)).unwrap() == StepOutcome::Ready {
                break;
            }
            // Round-trip through the snapshot at every suspension.
            let snap = session.snapshot();
            session = RouteSession::resume(snap, CollectingProbe::new()).unwrap();
            hops += 1;
            assert!(hops < 10_000, "session failed to converge");
        }
        assert!(hops > 1, "test must exercise at least two resumes");
        let (routed, _) = session.finish().unwrap();
        assert_eq!(routed.result.trees, mono.result.trees);
        assert_eq!(
            routed.result.stats.selection_log,
            mono.result.stats.selection_log
        );
        assert_eq!(routed.result.stats.deletions, mono.result.stats.deletions);
        assert_eq!(routed.result.channel_tracks, mono.result.channel_tracks);
    }

    #[test]
    fn resume_rejects_version_skew_and_bad_masks() {
        let (circuit, placement, cons) = testcase();
        let session = RouteSession::start(
            RouterConfig::default(),
            circuit,
            placement,
            cons,
            CollectingProbe::new(),
        )
        .unwrap();
        let snap = session.snapshot();

        let mut skewed = snap.clone();
        skewed.version = SNAPSHOT_VERSION + 1;
        let err = RouteSession::resume(skewed, CollectingProbe::new()).unwrap_err();
        assert!(matches!(err, RouteError::Checkpoint { .. }), "{err}");

        let mut short = snap.clone();
        short.alive.pop();
        let err = RouteSession::resume(short, CollectingProbe::new()).unwrap_err();
        assert!(matches!(err, RouteError::Checkpoint { .. }), "{err}");

        let mut wrong_len = snap.clone();
        wrong_len.alive[0].pop();
        let err = RouteSession::resume(wrong_len, CollectingProbe::new()).unwrap_err();
        assert!(matches!(err, RouteError::Checkpoint { .. }), "{err}");

        // Kill every edge of net 0: the alive set no longer connects it.
        let mut dead = snap;
        for b in dead.alive[0].iter_mut() {
            *b = false;
        }
        let err = RouteSession::resume(dead, CollectingProbe::new()).unwrap_err();
        assert!(matches!(err, RouteError::Checkpoint { .. }), "{err}");
    }

    #[test]
    fn budgeted_session_emits_fallback_at_the_same_point() {
        let (circuit, placement, cons) = testcase();
        let config = RouterConfig {
            budgets: crate::config::Budgets {
                deletion_steps: Some(2),
                phase_reroutes: None,
            },
            ..RouterConfig::default()
        };
        let (mono, mono_trace) = GlobalRouter::new(config.clone())
            .route_traced(circuit.clone(), placement.clone(), cons.clone())
            .unwrap();
        let mut session =
            RouteSession::start(config, circuit, placement, cons, CollectingProbe::new()).unwrap();
        while session.step(Some(1)).unwrap() == StepOutcome::Suspended {}
        let (routed, probe) = session.finish().unwrap();
        assert_eq!(routed.result.trees, mono.result.trees);
        assert_eq!(probe.finish().events, mono_trace.events);
    }
}
