//! Wire robustness: damaged frames and payloads must surface as
//! structured errors — [`FrameError`] from the frame codec or
//! [`ProtoError`] from the message layer — and **never** as a panic,
//! mirroring the checkpoint codec's damage tests (DESIGN.md §15).
//!
//! Covered here:
//!
//! - truncation at *every* byte boundary of a realistic frame →
//!   `FrameError::Truncated` (both the buffer and the stream decoder);
//! - single-byte corruption at *every* position → some structured
//!   error, and checksum coverage of the whole frame body;
//! - version skew → `FrameError::VersionSkew` naming both versions;
//! - length-field lies (oversize, overflow-adjacent values) →
//!   `Oversize`/`Truncated`, bounded allocation;
//! - unknown message kinds and schema violations inside a valid frame
//!   (bad keys, non-numeric fields, lying block lengths, trailing
//!   bytes, junk stage labels) → `ProtoError`;
//! - random byte soup thrown at both decoders → never a panic.

use std::panic::{catch_unwind, AssertUnwindSafe};

use bgr_net::{
    decode_frame, encode_frame, read_frame, Frame, FrameError, Message, ProtoError, WireOutcome,
    MAX_PAYLOAD, PROTO_VERSION,
};
use bgr_serve::FinishVerdict;

/// A realistic frame: a RESULT carrying a suspended outcome with
/// multi-line text blocks, as a worker would send it.
fn sample_frame_bytes() -> Vec<u8> {
    let msg = Message::Result {
        job: 2,
        slice: 5,
        outcome: WireOutcome::Suspended {
            checkpoint: "bgr-checkpoint v1\nconfig 4 2\nstage improve_delay\n".into(),
            stage: "improve_delay".into(),
            events_emitted: 321,
            selections_done: 87,
            events_jsonl: "{\"type\":\"event\",\"seq\":320,\"kind\":\"select\"}\n".into(),
        },
    };
    encode_frame(msg.kind(), &msg.encode_payload())
}

/// Asserts the buffer decoder errors structurally — and, via
/// `catch_unwind`, that it does not panic either.
fn assert_decode_rejects(bytes: &[u8], what: &str) -> FrameError {
    let outcome = catch_unwind(AssertUnwindSafe(|| decode_frame(bytes).map(|_| ())));
    match outcome {
        Ok(Err(e)) => e,
        Ok(Ok(())) => panic!("{what}: damaged frame decoded cleanly"),
        Err(_) => panic!("{what}: decoder panicked instead of erroring"),
    }
}

#[test]
fn truncation_at_every_byte_never_panics_and_always_errors() {
    let bytes = sample_frame_bytes();
    for cut in 0..bytes.len() {
        let e = assert_decode_rejects(&bytes[..cut], &format!("cut at byte {cut}"));
        assert!(
            matches!(e, FrameError::Truncated { .. }),
            "cut at {cut}: expected Truncated, got {e:?}"
        );
        // The stream decoder must agree with the buffer decoder.
        let mut cursor = std::io::Cursor::new(&bytes[..cut]);
        let outcome = catch_unwind(AssertUnwindSafe(|| read_frame(&mut cursor).map(|_| ())));
        match outcome {
            Ok(Err(_)) => {}
            Ok(Ok(())) => panic!("stream cut at {cut}: decoded cleanly"),
            Err(_) => panic!("stream cut at {cut}: panicked"),
        }
    }
}

#[test]
fn single_byte_corruption_at_every_position_is_caught() {
    let bytes = sample_frame_bytes();
    for pos in 0..bytes.len() {
        let mut damaged = bytes.clone();
        damaged[pos] ^= 0x41;
        let e = assert_decode_rejects(&damaged, &format!("flip at byte {pos}"));
        // Whatever the error, it must be one of the codec's structured
        // variants — most positions land on ChecksumMismatch, header
        // positions on their specific variant.
        match e {
            FrameError::BadMagic { .. }
            | FrameError::VersionSkew { .. }
            | FrameError::Oversize { .. }
            | FrameError::Truncated { .. }
            | FrameError::ChecksumMismatch { .. } => {}
            other => panic!("flip at {pos}: unstructured error {other:?}"),
        }
    }
}

#[test]
fn version_skew_is_named_before_payload_is_touched() {
    let mut bytes = sample_frame_bytes();
    bytes[4] = 0xFE;
    bytes[5] = 0xCA;
    let e = assert_decode_rejects(&bytes, "version skew");
    assert_eq!(
        e,
        FrameError::VersionSkew {
            got: 0xCAFE,
            want: PROTO_VERSION
        }
    );
    assert!(e.to_string().contains("skew"), "{e}");
}

#[test]
fn length_field_lies_are_bounded() {
    let mut bytes = sample_frame_bytes();
    // Claim a payload just past the cap: must reject by the length
    // check alone, without attempting the giant allocation.
    let lie = (MAX_PAYLOAD + 1).to_le_bytes();
    bytes[7..11].copy_from_slice(&lie);
    let e = assert_decode_rejects(&bytes, "oversize length");
    assert_eq!(
        e,
        FrameError::Oversize {
            len: MAX_PAYLOAD + 1
        }
    );
    // u32::MAX likewise.
    bytes[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
    let e = assert_decode_rejects(&bytes, "u32::MAX length");
    assert!(matches!(e, FrameError::Oversize { .. }), "{e:?}");
    // An in-cap lie larger than the actual payload truncates.
    let mut bytes = sample_frame_bytes();
    let real = u32::from_le_bytes(bytes[7..11].try_into().unwrap());
    bytes[7..11].copy_from_slice(&(real + 1000).to_le_bytes());
    let e = assert_decode_rejects(&bytes, "inflated length");
    assert!(matches!(e, FrameError::Truncated { .. }), "{e:?}");
}

#[test]
fn unknown_kinds_and_schema_violations_error_structurally() {
    // Unknown kind byte in an otherwise pristine frame.
    let frame = Frame {
        kind: 200,
        payload: Vec::new(),
    };
    assert!(matches!(
        Message::decode(&frame),
        Err(ProtoError::UnknownKind { kind: 200 })
    ));
    // Schema violations inside valid frames: each damaged payload must
    // produce Malformed, never a panic.
    let damaged_payloads: &[(&str, Vec<u8>)] = &[
        ("wrong key", b"jub 1\nslice 2\n".to_vec()),
        ("non-numeric field", b"job one\nslice 2\n".to_vec()),
        ("missing newline", b"job 1".to_vec()),
        ("non-utf8 line", vec![0xFF, 0xFE, b'\n']),
        ("empty payload for keyed message", Vec::new()),
    ];
    for (what, payload) in damaged_payloads {
        let frame = Frame {
            kind: 7, // Heartbeat: expects `job`, `slice`
            payload: payload.clone(),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| Message::decode(&frame).map(|_| ())));
        match outcome {
            Ok(Err(ProtoError::Malformed { .. })) => {}
            Ok(Err(e)) => panic!("{what}: wrong error {e:?}"),
            Ok(Ok(())) => panic!("{what}: damaged payload decoded cleanly"),
            Err(_) => panic!("{what}: decoder panicked"),
        }
    }
}

#[test]
fn lying_block_lengths_and_junk_stages_are_rejected() {
    // A RESULT whose checkpoint block claims more bytes than follow.
    let msg = Message::Result {
        job: 0,
        slice: 0,
        outcome: WireOutcome::Failed {
            message: "x".into(),
        },
    };
    let mut payload = msg.encode_payload();
    // The `message` block header is `message 1\n`; inflate the length.
    let text = String::from_utf8(payload.clone()).unwrap();
    let lied = text.replace("message 1\n", "message 900\n");
    assert_ne!(text, lied, "fixture must actually lie");
    payload = lied.into_bytes();
    let frame = Frame { kind: 6, payload };
    assert!(matches!(
        Message::decode(&frame),
        Err(ProtoError::Malformed { .. })
    ));
    // A suspended RESULT whose stage label names no pipeline stage
    // decodes at the message layer but must refuse reconstruction into
    // a `SliceOutcome`.
    let outcome = WireOutcome::Suspended {
        checkpoint: "cp".into(),
        stage: "improvize_delay".into(),
        events_emitted: 0,
        selections_done: 0,
        events_jsonl: String::new(),
    };
    assert!(matches!(
        outcome.into_outcome(),
        Err(ProtoError::Malformed { .. })
    ));
    // Trailing bytes after a structurally complete message.
    let mut payload = Message::Bye.encode_payload();
    payload.push(b'!');
    let frame = Frame { kind: 10, payload };
    assert!(matches!(
        Message::decode(&frame),
        Err(ProtoError::Malformed { .. })
    ));
}

#[test]
fn verdict_payload_damage_is_rejected_field_by_field() {
    let msg = Message::Result {
        job: 1,
        slice: 9,
        outcome: WireOutcome::Finished {
            events_emitted: 10,
            selections_done: 3,
            events_jsonl: String::new(),
            verdict: FinishVerdict {
                audit_clean: true,
                audit_checks: 7,
                audit_line: "audit clean: 7 checks".into(),
                violations_line: None,
                feasible: true,
                worst_margin_ps: 12.5,
                area_tracks: 9,
                total_length_um: 100.0,
            },
        },
    };
    let text = String::from_utf8(msg.encode_payload()).unwrap();
    for (what, from, to) in [
        ("bool field", "audit_clean true", "audit_clean yes"),
        ("hex float", "worst_margin_ps 4029", "worst_margin_ps zz29"),
        ("violations marker", "violations none", "violations maybe"),
        ("outcome tag", "outcome finished", "outcome finnished"),
    ] {
        let damaged = text.replacen(from, to, 1);
        assert_ne!(text, damaged, "{what}: fixture must change the payload");
        let frame = Frame {
            kind: 6,
            payload: damaged.into_bytes(),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| Message::decode(&frame).map(|_| ())));
        match outcome {
            Ok(Err(ProtoError::Malformed { .. })) => {}
            Ok(Err(e)) => panic!("{what}: wrong error {e:?}"),
            Ok(Ok(())) => panic!("{what}: damaged verdict decoded cleanly"),
            Err(_) => panic!("{what}: decoder panicked"),
        }
    }
}

#[test]
fn random_byte_soup_never_panics_either_decoder() {
    // Deterministic xorshift* soup — no RNG dependency, reproducible.
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..200 {
        let len = (next() % 512) as usize;
        let mut soup: Vec<u8> = (0..len).map(|_| (next() & 0xFF) as u8).collect();
        // Half the rounds get a valid magic so deeper paths are hit.
        if round % 2 == 0 && soup.len() >= 4 {
            soup[..4].copy_from_slice(b"BGRW");
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = decode_frame(&soup);
            let mut cursor = std::io::Cursor::new(&soup);
            let _ = read_frame(&mut cursor);
        }));
        assert!(outcome.is_ok(), "round {round}: decoder panicked on soup");
    }
}
