//! Lease-table semantics, driven purely in-process with explicit
//! instants (no sockets, no sleeps): heartbeat bookkeeping on unknown
//! and stale targets, expiry re-grants, and the byte-identical-regrant
//! guarantee that makes reassignment invisible (DESIGN.md §15).

use std::time::{Duration, Instant};

use bgr_metrics::MetricsRegistry;
use bgr_net::{Coordinator, NetMetrics};
use bgr_serve::{run_slice, JobQueue};

const TIMEOUT: Duration = Duration::from_millis(250);
const EPS: Duration = Duration::from_millis(1);

fn queue_with_jobs(n: u64) -> JobQueue {
    let mut queue = JobQueue::new();
    for i in 0..n {
        let params = bgr_gen::GenParams::small(3 + i);
        let design = bgr_gen::generate(&params);
        let placement = bgr_gen::place_design(&design, &params, bgr_gen::PlacementStyle::EvenFeed);
        queue.submit(
            format!("job{i}"),
            design.circuit,
            placement,
            design.constraints,
            bgr_core::RouterConfig::default(),
            Some(4),
        );
    }
    queue
}

#[test]
fn heartbeats_on_unknown_or_stale_targets_are_ignored() {
    let registry = MetricsRegistry::new();
    let mut coord = Coordinator::new(queue_with_jobs(2), TIMEOUT).with_metrics(&registry);
    let metrics = NetMetrics::register(&registry);
    let t0 = Instant::now();
    let spec = coord.next_lease(t0).expect("job 0 leasable");
    assert_eq!((spec.job, spec.slice), (0, 0));

    // Unknown job: no lease entry, nothing to extend.
    coord.heartbeat(99, 0, t0);
    // Stale slice index on a live lease: ignored, not extended.
    coord.heartbeat(spec.job, spec.slice + 7, t0);
    assert_eq!(metrics.heartbeats_total.get(), 0);

    // A live heartbeat halfway through the window extends the lease...
    coord.heartbeat(spec.job, spec.slice, t0 + TIMEOUT / 2);
    assert_eq!(metrics.heartbeats_total.get(), 1);

    // ...so past the original deadline, job 0 is still held: the next
    // grant is job 1, and nothing counts as expired.
    let next = coord
        .next_lease(t0 + TIMEOUT + EPS)
        .expect("job 1 leasable");
    assert_eq!(next.job, 1, "heartbeat must have kept job 0's lease");
    assert_eq!(metrics.leases_expired_total.get(), 0);
    assert_eq!(metrics.leases_granted_total.get(), 2);
}

#[test]
fn expired_lease_regrant_is_byte_identical_and_duplicates_land_stale() {
    let registry = MetricsRegistry::new();
    let mut coord = Coordinator::new(queue_with_jobs(1), TIMEOUT).with_metrics(&registry);
    let metrics = NetMetrics::register(&registry);
    let t0 = Instant::now();
    let first = coord.next_lease(t0).expect("leasable");

    // No heartbeat: the lease expires, and the re-grant hands the next
    // asker the *identical* spec — same job, slice, quota, checkpoint
    // bytes. Reassignment changes nothing a worker computes.
    let regrant = coord.next_lease(t0 + TIMEOUT + EPS).expect("re-grantable");
    assert_eq!(first, regrant, "regrant spec must be byte-identical");
    assert_eq!(metrics.leases_granted_total.get(), 2);
    assert_eq!(metrics.leases_expired_total.get(), 1);

    // The presumed-dead worker heartbeats its old lease anyway. Same
    // (job, slice) as the re-grant — extending is harmless (rule 2:
    // both workers will produce byte-identical outcomes) and counted.
    coord.heartbeat(first.job, first.slice, t0 + TIMEOUT + 2 * EPS);
    assert_eq!(metrics.heartbeats_total.get(), 1);

    // Both workers answer. The slice outcome is a pure function of
    // (checkpoint, quota), so compute it twice: first application
    // advances the job, the duplicate is rejected stale.
    let out_a = run_slice(&first.checkpoint, first.quota);
    let out_b = run_slice(&regrant.checkpoint, regrant.quota);
    assert!(coord.apply_result(first.job, first.slice, out_a));
    assert!(!coord.apply_result(regrant.job, regrant.slice, out_b));
    assert_eq!(metrics.results_applied_total.get(), 1);
    assert_eq!(metrics.results_stale_total.get(), 1);

    // A result for a job id the queue never issued is stale too,
    // never a panic.
    let stray = run_slice(&first.checkpoint, first.quota);
    assert!(!coord.apply_result(42, 0, stray));
    assert_eq!(metrics.results_stale_total.get(), 2);
}
