//! Distributed slice draining for the `bgr` global router.
//!
//! The serve layer chops a route into budgeted, checkpointed slices;
//! this crate ships those slices across machine boundaries without
//! giving up a single deterministic byte. Four pieces (DESIGN.md §15):
//!
//! * [`frame`] — length-prefixed, checksummed, versioned frames over
//!   `std::net::TcpStream` (std-only, no serialization dependency);
//! * [`proto`] — typed messages: HELLO/WELCOME handshake, LEASE /
//!   RESULT / HEARTBEAT / NACK / METRICS / BYE;
//! * [`coordinator`] — wraps a [`bgr_serve::JobQueue`], leasing slices
//!   with deadline-based expiry and deterministic reassignment, plus
//!   speculative **portfolio racing**: one suspended checkpoint fanned
//!   under N configuration arms, losers cancelled at slice-budget
//!   boundaries, the winner picked by a total deterministic order;
//! * [`drain`] / [`worker`] — the TCP serving loop and the pull-based
//!   worker (binaries `bgr-coordinator`, `bgr-worker`).
//!
//! Robustness rides on top (DESIGN.md §15 "Failure model"):
//! [`chaos`] is a deterministic fault-injection proxy (binary
//! `bgr-chaos-proxy`) for resets, stalls, partial writes and duplicate
//! delivery; the worker reconnects through transport faults with
//! bounded backoff and heartbeats mid-slice; the coordinator can
//! journal every applied result ([`Coordinator::with_journal`]) and
//! replay the journal after a crash, and can require a shared-secret
//! auth token ([`drain::DrainOptions`]).
//!
//! The determinism claim, precisely: for the same submitted jobs, the
//! merged per-job streams (trace events with contiguous `seq`, progress
//! records, audited `done` records) after a distributed drain are
//! **byte-identical** to a single-process `JobQueue::run` — for any
//! worker count, any interleaving, and any number of worker crashes
//! with lease reassignment. `tests/distributed_determinism.rs` asserts
//! exactly this.
//!
//! # Example (in-process loopback)
//!
//! ```no_run
//! use std::net::TcpListener;
//! use std::time::Duration;
//! use bgr_metrics::MetricsRegistry;
//! use bgr_net::{run_worker, serve_drain, Coordinator, WorkerOptions};
//! use bgr_serve::JobQueue;
//!
//! let queue = JobQueue::new(); // submit jobs here
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! let addr = listener.local_addr().unwrap().to_string();
//! let server = std::thread::spawn(move || {
//!     serve_drain(listener, Coordinator::new(queue, Duration::from_secs(5))).unwrap()
//! });
//! let registry = MetricsRegistry::new();
//! run_worker(&addr, &WorkerOptions::named("w0"), &registry).unwrap();
//! let drained = server.join().unwrap();
//! assert!(drained.all_completed());
//! ```

pub mod chaos;
pub mod coordinator;
pub mod drain;
pub mod frame;
pub mod proto;
pub mod worker;

pub use chaos::{ChaosOptions, ChaosProxy, ChaosStats, ChaosUpstream, DiskFaults, FaultyDisk};
pub use coordinator::{Coordinator, NetMetrics, Portfolio};
pub use drain::{serve_drain, serve_drain_with, DrainOptions};
pub use frame::{
    decode_frame, encode_frame, read_frame, write_frame, Frame, FrameError, MAX_PAYLOAD,
    PROTO_VERSION,
};
pub use proto::{recv, send, Message, ProtoError, WireOutcome};
pub use worker::{run_worker, WorkerMetrics, WorkerOptions, WorkerReport};
