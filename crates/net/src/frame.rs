//! Length-prefixed, checksummed, versioned frames over a byte stream.
//!
//! Every `bgr-net` message travels as one frame:
//!
//! ```text
//! +------+---------+------+---------+----------------+------------+
//! | MAGIC| version | kind |  length |    payload     | FNV-1a 64  |
//! | 4 B  |  u16 LE | u8   |  u32 LE | `length` bytes |   u64 LE   |
//! +------+---------+------+---------+----------------+------------+
//! ```
//!
//! The checksum covers everything before it (magic through payload), so
//! a flipped bit anywhere in the frame is caught. Decoding never
//! panics: every malformed input maps to a structured [`FrameError`]
//! (asserted exhaustively by `tests/frame_robustness.rs`, mirroring the
//! checkpoint codec's damage tests).

use std::fmt;
use std::io::{Read, Write};

/// Frame preamble: identifies a `bgr-net` byte stream.
pub const MAGIC: [u8; 4] = *b"BGRW";

/// Wire protocol version. Bumped on any incompatible change; peers
/// exchange it in the HELLO/WELCOME handshake and refuse skew.
///
/// v2: HELLO carries an optional auth token, WELCOME carries the
/// coordinator's heartbeat cadence.
pub const PROTO_VERSION: u16 = 2;

/// Hard ceiling on a frame's payload length. Checkpoints for realistic
/// designs are a few MB of text; 256 MB rejects length-field corruption
/// without constraining real traffic.
pub const MAX_PAYLOAD: u32 = 256 << 20;

/// Bytes of overhead around a payload (magic + version + kind + length
/// + checksum).
pub const HEADER_LEN: usize = 4 + 2 + 1 + 4;
const TRAILER_LEN: usize = 8;

/// A decoded frame: message kind byte plus raw payload. Interpretation
/// of the payload is the `proto` module's job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind discriminant (see `proto::Message::kind`).
    pub kind: u8,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

/// Why a frame failed to decode. Every variant is reachable by damaging
/// a valid frame; none of them panics the decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The stream ended mid-frame.
    Truncated {
        /// What was being read when the bytes ran out.
        at: &'static str,
    },
    /// The first four bytes were not [`MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The peer speaks a different protocol version.
    VersionSkew {
        /// Version in the frame.
        got: u16,
        /// Version this build speaks ([`PROTO_VERSION`]).
        want: u16,
    },
    /// The payload length field exceeds [`MAX_PAYLOAD`].
    Oversize {
        /// The claimed length.
        len: u32,
    },
    /// The trailing checksum does not match the frame bytes.
    ChecksumMismatch {
        /// Checksum computed over the received bytes.
        computed: u64,
        /// Checksum carried by the frame.
        carried: u64,
    },
    /// An underlying I/O error (message of the `std::io::Error`).
    Io {
        /// The I/O error's message.
        message: String,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { at } => write!(f, "frame truncated while reading {at}"),
            Self::BadMagic { found } => write!(f, "bad frame magic {found:?}"),
            Self::VersionSkew { got, want } => {
                write!(f, "protocol version skew: peer v{got}, local v{want}")
            }
            Self::Oversize { len } => {
                write!(f, "frame payload length {len} exceeds cap {MAX_PAYLOAD}")
            }
            Self::ChecksumMismatch { computed, carried } => write!(
                f,
                "frame checksum mismatch: computed {computed:#018x}, carried {carried:#018x}"
            ),
            Self::Io { message } => write!(f, "frame i/o error: {message}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Self::Truncated { at: "stream" }
        } else {
            Self::Io {
                message: e.to_string(),
            }
        }
    }
}

/// FNV-1a 64-bit over `bytes` — tiny, dependency-free, and plenty to
/// catch wire corruption (integrity, not authentication).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serializes one frame to bytes (magic, version, kind, length,
/// payload, checksum).
///
/// # Panics
///
/// Panics when `payload` exceeds [`MAX_PAYLOAD`]: every peer would
/// reject such a frame as `Oversize`, and past `u32::MAX` the length
/// field could not even represent it (the `as u32` cast would truncate,
/// emitting a corrupt frame). [`write_frame`] checks first and returns
/// the cap violation as a structured error instead.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_PAYLOAD as usize,
        "frame payload length {} exceeds cap {MAX_PAYLOAD}",
        payload.len()
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decodes one frame from the front of `buf`. Returns the frame and
/// how many bytes it consumed, so callers can decode back-to-back
/// frames from one buffer.
///
/// # Errors
///
/// Structured [`FrameError`] on truncation, bad magic, version skew, an
/// oversize length field or a checksum mismatch. Never panics.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
    if buf.len() < 4 {
        return Err(FrameError::Truncated { at: "magic" });
    }
    if buf[..4] != MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&buf[..4]);
        return Err(FrameError::BadMagic { found });
    }
    if buf.len() < 6 {
        return Err(FrameError::Truncated { at: "version" });
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != PROTO_VERSION {
        return Err(FrameError::VersionSkew {
            got: version,
            want: PROTO_VERSION,
        });
    }
    if buf.len() < 7 {
        return Err(FrameError::Truncated { at: "kind" });
    }
    let kind = buf[6];
    if buf.len() < HEADER_LEN {
        return Err(FrameError::Truncated { at: "length" });
    }
    let len = u32::from_le_bytes([buf[7], buf[8], buf[9], buf[10]]);
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversize { len });
    }
    let total = HEADER_LEN + len as usize + TRAILER_LEN;
    if buf.len() < HEADER_LEN + len as usize {
        return Err(FrameError::Truncated { at: "payload" });
    }
    if buf.len() < total {
        return Err(FrameError::Truncated { at: "checksum" });
    }
    let body = &buf[..HEADER_LEN + len as usize];
    let computed = fnv1a(body);
    let carried = u64::from_le_bytes(
        buf[HEADER_LEN + len as usize..total]
            .try_into()
            .expect("eight checksum bytes"),
    );
    if computed != carried {
        return Err(FrameError::ChecksumMismatch { computed, carried });
    }
    Ok((
        Frame {
            kind,
            payload: body[HEADER_LEN..].to_vec(),
        },
        total,
    ))
}

/// Writes one frame to `w` and flushes.
///
/// # Errors
///
/// [`FrameError::Oversize`] when `payload` exceeds [`MAX_PAYLOAD`]
/// (mirroring the decode-side cap, with nothing written to `w`),
/// [`FrameError::Io`] on a write failure.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_PAYLOAD as usize {
        return Err(FrameError::Oversize {
            len: u32::try_from(payload.len()).unwrap_or(u32::MAX),
        });
    }
    w.write_all(&encode_frame(kind, payload))?;
    w.flush()?;
    Ok(())
}

/// Reads exactly one frame from `r`.
///
/// Reads the fixed header first, then the payload and checksum the
/// header promises — so a well-behaved peer's frames are consumed
/// exactly, with no read-ahead into the next frame.
///
/// # Errors
///
/// Structured [`FrameError`]; a cleanly closed stream surfaces as
/// [`FrameError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[..4] != MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&header[..4]);
        return Err(FrameError::BadMagic { found });
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != PROTO_VERSION {
        return Err(FrameError::VersionSkew {
            got: version,
            want: PROTO_VERSION,
        });
    }
    let len = u32::from_le_bytes([header[7], header[8], header[9], header[10]]);
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversize { len });
    }
    let mut rest = vec![0u8; len as usize + TRAILER_LEN];
    r.read_exact(&mut rest)?;
    let mut body = header.to_vec();
    body.extend_from_slice(&rest[..len as usize]);
    let computed = fnv1a(&body);
    let carried = u64::from_le_bytes(
        rest[len as usize..]
            .try_into()
            .expect("eight checksum bytes"),
    );
    if computed != carried {
        return Err(FrameError::ChecksumMismatch { computed, carried });
    }
    Ok(Frame {
        kind: header[6],
        payload: rest[..len as usize].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_bytes_and_streams() {
        for (kind, payload) in [
            (1u8, b"".to_vec()),
            (4, b"hello lease".to_vec()),
            (6, vec![0u8; 70_000]),
        ] {
            let bytes = encode_frame(kind, &payload);
            let (frame, used) = decode_frame(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(frame.kind, kind);
            assert_eq!(frame.payload, payload);
            let mut cursor = std::io::Cursor::new(&bytes);
            let frame = read_frame(&mut cursor).unwrap();
            assert_eq!(frame.kind, kind);
            assert_eq!(frame.payload, payload);
        }
    }

    #[test]
    fn oversize_payloads_are_refused_at_encode_time() {
        let payload = vec![0u8; MAX_PAYLOAD as usize + 1];
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, 1, &payload).unwrap_err();
        assert!(
            matches!(err, FrameError::Oversize { len } if len == MAX_PAYLOAD + 1),
            "{err:?}"
        );
        assert!(sink.is_empty(), "nothing may reach the stream");
    }

    #[test]
    fn back_to_back_frames_decode_in_sequence() {
        let mut wire = encode_frame(3, b"");
        wire.extend_from_slice(&encode_frame(4, b"next"));
        let (first, used) = decode_frame(&wire).unwrap();
        assert_eq!(first.kind, 3);
        let (second, _) = decode_frame(&wire[used..]).unwrap();
        assert_eq!(second.payload, b"next");
    }
}
