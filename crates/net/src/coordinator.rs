//! Lease-based drain coordination over a [`JobQueue`].
//!
//! The [`Coordinator`] owns the queue and a lease table. Workers pull:
//! each asks for a lease, computes the slice with the *same*
//! `bgr_serve::run_slice` the local rounds use, and returns the
//! outcome. Three rules keep a distributed drain byte-identical to a
//! local one (DESIGN.md §15):
//!
//! 1. **Leases are keyed by `(job, slice)`, never by arrival time.**
//!    The grant scan walks job ids ascending; which worker receives a
//!    lease is scheduling noise, because…
//! 2. **…a slice outcome is a pure function of `(checkpoint, quota)`.**
//!    Two workers handed the same lease return byte-identical results,
//!    so "first valid result wins" is deterministic no matter who wins.
//! 3. **Expiry only re-grants, it never mutates.** A lease that misses
//!    its deadline (worker died mid-slice) is handed to the next asker
//!    unchanged; if the presumed-dead worker answers anyway, the
//!    duplicate is stale by slice index and rejected.
//!
//! Speculative portfolios ride on the same machinery: one suspended
//! checkpoint is fanned under N configuration arms (differing only in
//! deterministically safe knobs — see `bgr_io::reconfigure_checkpoint`)
//! as N independent jobs, budgeted to `max_slices` each. Budgets are
//! enforced *before* any grant, so an arm runs exactly
//! `min(natural, max_slices)` slices regardless of worker timing, and
//! the winner is decided only once every arm has parked or finished —
//! by the total order ([`FinishVerdict::beats`], then arm index), never
//! by which arm finished first on the wall clock.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use bgr_core::{RouteError, RouterConfig};
use bgr_io::{read_journal, reconfigure_checkpoint, JournalWriter};
use bgr_metrics::{CounterHandle, MetricsRegistry, MetricsSnapshot};
use bgr_serve::{JobQueue, LeaseSpec, ReplayStats, SessionState, SliceOutcome};

use crate::frame::Frame;
use crate::proto::{Message, ProtoError, WireOutcome};

/// Diagnostic counters for the coordination layer, registered beside
/// the queue's [`bgr_serve::ServeMetrics`]. Observational only — no
/// routing decision reads them.
#[derive(Debug, Clone)]
pub struct NetMetrics {
    /// Leases granted (including re-grants after expiry).
    pub leases_granted_total: CounterHandle,
    /// Grants that replaced an expired lease.
    pub leases_expired_total: CounterHandle,
    /// Results accepted and applied to the queue.
    pub results_applied_total: CounterHandle,
    /// Results rejected as stale (expired-lease duplicates, replays).
    pub results_stale_total: CounterHandle,
    /// Heartbeats that extended a live lease.
    pub heartbeats_total: CounterHandle,
    /// Connections shed at accept with `Nack(busy)` (concurrency cap).
    pub conns_shed_total: CounterHandle,
    /// Lease requests deferred because the live-lease table was at its
    /// configured depth limit.
    pub leases_deferred_total: CounterHandle,
    /// Journal append failures that degraded the coordinator to
    /// journal-less operation (at most 1 per attached journal).
    pub journal_degraded_total: CounterHandle,
}

impl NetMetrics {
    /// Registers the coordination metric family on `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            leases_granted_total: registry.counter(
                "bgr_net_leases_granted_total",
                "Slice leases granted to workers (re-grants included)",
                &[],
            ),
            leases_expired_total: registry.counter(
                "bgr_net_leases_expired_total",
                "Lease grants that replaced an expired lease",
                &[],
            ),
            results_applied_total: registry.counter(
                "bgr_net_results_applied_total",
                "Worker slice results accepted and applied",
                &[],
            ),
            results_stale_total: registry.counter(
                "bgr_net_results_stale_total",
                "Worker slice results rejected as stale",
                &[],
            ),
            heartbeats_total: registry.counter(
                "bgr_net_heartbeats_total",
                "Heartbeats that extended a live lease",
                &[],
            ),
            conns_shed_total: registry.counter(
                "bgr_net_conns_shed_total",
                "Connections shed at accept with Nack(busy)",
                &[],
            ),
            leases_deferred_total: registry.counter(
                "bgr_net_leases_deferred_total",
                "Lease requests deferred by the live-lease depth limit",
                &[],
            ),
            journal_degraded_total: registry.counter(
                "bgr_net_journal_degraded_total",
                "Journal failures that degraded to journal-less operation",
                &[],
            ),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Lease {
    slice: u64,
    deadline: Instant,
}

/// One speculative portfolio: arm job ids plus its race state.
#[derive(Debug)]
pub struct Portfolio {
    /// Portfolio name (diagnostics).
    pub name: String,
    /// Queue ids of the arm jobs, in arm order (the final tiebreak).
    pub arms: Vec<usize>,
    /// Per-arm slice budget; arms are cancelled at this boundary.
    pub max_slices: u64,
    /// Winning arm *position* (index into `arms`), once decided.
    pub winner: Option<usize>,
    /// Whether the race has been decided (a decided race can still
    /// have no winner, when every arm was cancelled before finishing).
    pub decided: bool,
}

/// Coordinates a fleet of pull-based workers draining a [`JobQueue`].
/// Transport-free: the TCP layer in [`crate::drain`] and in-process
/// tests drive the same methods.
#[derive(Debug)]
pub struct Coordinator {
    queue: JobQueue,
    leases: HashMap<usize, Lease>,
    lease_timeout: Duration,
    max_live_leases: Option<usize>,
    portfolios: Vec<Portfolio>,
    metrics: Option<NetMetrics>,
    worker_snapshots: Vec<(String, MetricsSnapshot)>,
    journal: Option<JournalWriter>,
    journal_degraded: Option<String>,
}

impl Coordinator {
    /// Wraps `queue`; leases expire `lease_timeout` after grant unless
    /// extended by heartbeats.
    pub fn new(queue: JobQueue, lease_timeout: Duration) -> Self {
        Self {
            queue,
            leases: HashMap::new(),
            lease_timeout,
            max_live_leases: None,
            portfolios: Vec::new(),
            metrics: None,
            worker_snapshots: Vec::new(),
            journal: None,
            journal_degraded: None,
        }
    }

    /// Attaches coordination counters (see [`NetMetrics`]).
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(NetMetrics::register(registry));
        self
    }

    /// Caps the live (unexpired) lease table at `max` entries. A lease
    /// request arriving at the cap is deferred — answered `NoWork`
    /// rather than granted — until a lease completes or expires.
    /// Deferral throttles concurrency only; which slices run, and what
    /// they compute, is unchanged (rule 2: outcomes are pure functions
    /// of the spec). `None` (the default) grants without depth limit.
    pub fn with_max_live_leases(mut self, max: Option<usize>) -> Self {
        self.max_live_leases = max;
        self
    }

    /// Records a connection shed at accept by the serving loop's
    /// concurrency cap (see [`crate::drain::DrainOptions::max_conns`]).
    pub fn note_connection_shed(&mut self) {
        if let Some(m) = &self.metrics {
            m.conns_shed_total.inc();
        }
    }

    /// Attaches a write-ahead outcome journal: every applied `RESULT`
    /// is appended (as its wire payload) before it mutates the queue,
    /// so a killed coordinator can [`Self::replay_journal`] back to the
    /// exact queue state. Attach *after* replaying — replayed results
    /// go through [`JobQueue::replay`], which never journals, so a
    /// restart does not duplicate records.
    pub fn with_journal(mut self, writer: JournalWriter) -> Self {
        self.journal = Some(writer);
        self
    }

    /// The first journal-append failure, if any. Durability degrades
    /// (the drain itself continues); operators alert on this.
    pub fn journal_degradation(&self) -> Option<&str> {
        self.journal_degraded.as_deref()
    }

    /// The lease timeout this coordinator grants under.
    pub fn lease_timeout(&self) -> Duration {
        self.lease_timeout
    }

    /// Heartbeat cadence advertised in WELCOME: a quarter of the lease
    /// timeout (min 1 ms), so a slow-but-alive worker refreshes its
    /// lease several times per deadline window.
    pub fn heartbeat_cadence_ms(&self) -> u64 {
        (self.lease_timeout.as_millis() as u64 / 4).max(1)
    }

    /// Replays a journal's bytes into the queue via
    /// [`JobQueue::replay`], returning what was applied. Jobs (and any
    /// portfolio) must already be re-submitted in their original order;
    /// stale or duplicate records are rejected by the same slice-index
    /// validation as live results, so replaying a journal twice is
    /// harmless.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] when the journal itself is damaged
    /// mid-file or a record does not decode as a `RESULT` payload (a
    /// torn tail from a crash mid-append is tolerated, not an error).
    pub fn replay_journal(&mut self, bytes: &[u8]) -> Result<ReplayStats, ProtoError> {
        let (entries, _tail) = read_journal(bytes).map_err(|e| ProtoError::Malformed {
            message: format!("journal: {e}"),
        })?;
        let mut outcomes = Vec::with_capacity(entries.len());
        for entry in entries {
            if entry.kind != "result" {
                continue;
            }
            // Journal records carry the `RESULT` wire payload verbatim;
            // re-frame under its discriminant to reuse the decoder.
            let frame = Frame {
                kind: 6,
                payload: entry.payload,
            };
            match Message::decode(&frame)? {
                Message::Result {
                    job,
                    slice,
                    outcome,
                } => outcomes.push((job as usize, slice, outcome.into_outcome()?)),
                other => {
                    return Err(ProtoError::Malformed {
                        message: format!("journal result record decoded as kind {}", other.kind()),
                    })
                }
            }
        }
        Ok(self.queue.replay(outcomes))
    }

    /// The wrapped queue (streams, states, verdicts).
    pub fn queue(&self) -> &JobQueue {
        &self.queue
    }

    /// Mutable queue access (submission before the drain starts).
    pub fn queue_mut(&mut self) -> &mut JobQueue {
        &mut self.queue
    }

    /// Registers a speculative portfolio: `checkpoint` is fanned under
    /// every arm's configuration as an independent suspended job.
    /// Returns the portfolio id.
    ///
    /// # Errors
    ///
    /// Structured error when the checkpoint does not parse or an arm
    /// cannot be submitted.
    pub fn race_portfolio(
        &mut self,
        name: impl Into<String>,
        checkpoint: &str,
        arms: &[(String, RouterConfig)],
        quota: Option<u64>,
        max_slices: u64,
    ) -> Result<usize, RouteError> {
        let name = name.into();
        let mut ids = Vec::with_capacity(arms.len());
        for (arm_name, config) in arms {
            let armed =
                reconfigure_checkpoint(checkpoint, config).map_err(|e| RouteError::Checkpoint {
                    message: e.to_string(),
                })?;
            ids.push(
                self.queue
                    .submit_checkpoint(format!("{name}/{arm_name}"), &armed, quota)?,
            );
        }
        self.portfolios.push(Portfolio {
            name,
            arms: ids,
            max_slices,
            winner: None,
            decided: false,
        });
        Ok(self.portfolios.len() - 1)
    }

    /// The registered portfolios, in registration order.
    pub fn portfolios(&self) -> &[Portfolio] {
        &self.portfolios
    }

    /// Enforces portfolio budgets and decides finished races. Called
    /// before every grant, so no arm is ever leased past its budget —
    /// the cancellation boundary is a function of slice counts alone,
    /// not of worker timing.
    fn maintain(&mut self) {
        for p in &mut self.portfolios {
            for &id in &p.arms {
                let job = self.queue.job(id);
                if !job.state().is_terminal() && !job.is_cancelled() && job.slices() >= p.max_slices
                {
                    self.queue.cancel(id);
                }
            }
            if p.decided {
                continue;
            }
            let all_parked = p.arms.iter().all(|&id| {
                let job = self.queue.job(id);
                job.state().is_terminal() || (job.is_cancelled() && !self.leases.contains_key(&id))
            });
            if !all_parked {
                continue;
            }
            // Total order: audited feasibility, worst margin, area,
            // length ([`FinishVerdict::beats`]); ascending arm index
            // breaks exact ties because the scan keeps the incumbent.
            let mut winner: Option<usize> = None;
            for (pos, &id) in p.arms.iter().enumerate() {
                let Some(v) = self.queue.job(id).verdict() else {
                    continue;
                };
                match winner {
                    None => winner = Some(pos),
                    Some(best) => {
                        let best_v = self
                            .queue
                            .job(p.arms[best])
                            .verdict()
                            .expect("winner has a verdict");
                        if v.beats(best_v) {
                            winner = Some(pos);
                        }
                    }
                }
            }
            p.winner = winner;
            p.decided = true;
        }
    }

    /// Whether nothing is leasable anymore and every race is decided.
    pub fn settled(&mut self) -> bool {
        self.maintain();
        self.queue.settled() && self.portfolios.iter().all(|p| p.decided)
    }

    /// Grants the next lease by ascending job id, skipping jobs whose
    /// current lease has not expired. Re-granting an expired lease
    /// hands out the *identical* spec — reassignment changes nothing a
    /// worker computes.
    pub fn next_lease(&mut self, now: Instant) -> Option<LeaseSpec> {
        self.maintain();
        if let Some(cap) = self.max_live_leases {
            let live = self.leases.values().filter(|l| now < l.deadline).count();
            if live >= cap {
                if let Some(m) = &self.metrics {
                    m.leases_deferred_total.inc();
                }
                return None;
            }
        }
        for id in 0..self.queue.jobs().len() {
            match self.leases.get(&id) {
                Some(lease) if now < lease.deadline => continue,
                _ => {}
            }
            let expired = self.leases.contains_key(&id);
            let spec = match self.queue.lease_spec(id) {
                Ok(Some(spec)) => spec,
                Ok(None) => {
                    self.leases.remove(&id);
                    continue;
                }
                Err(_) => {
                    // The job failed to materialize; it is terminal now
                    // and its structured error lives on the job.
                    self.leases.remove(&id);
                    continue;
                }
            };
            self.leases.insert(
                id,
                Lease {
                    slice: spec.slice,
                    deadline: now + self.lease_timeout,
                },
            );
            if let Some(m) = &self.metrics {
                m.leases_granted_total.inc();
                if expired {
                    m.leases_expired_total.inc();
                }
            }
            return Some(spec);
        }
        None
    }

    /// Extends the deadline of a live lease. Unknown or stale
    /// heartbeats are ignored.
    pub fn heartbeat(&mut self, job: usize, slice: u64, now: Instant) {
        if let Some(lease) = self.leases.get_mut(&job) {
            if lease.slice == slice {
                lease.deadline = now + self.lease_timeout;
                if let Some(m) = &self.metrics {
                    m.heartbeats_total.inc();
                }
            }
        }
    }

    /// Applies a worker's slice result. Returns `false` for stale
    /// results (wrong slice index, terminal job) — harmless duplicates
    /// by rule 2 above, never an error.
    pub fn apply_result(&mut self, job: usize, slice: u64, out: SliceOutcome) -> bool {
        if job >= self.queue.jobs().len() {
            if let Some(m) = &self.metrics {
                m.results_stale_total.inc();
            }
            return false;
        }
        // Write-ahead: journal the result before it mutates the queue.
        // Only plausibly applicable results are journaled (the replay
        // path re-validates through `apply_remote` anyway, so an
        // over-journaled stale record would merely be re-rejected).
        if self.journal.is_some() && self.queue.job(job).slices() == slice {
            let payload = Message::Result {
                job: job as u64,
                slice,
                outcome: WireOutcome::from_outcome(&out),
            }
            .encode_payload();
            let writer = self.journal.as_mut().expect("checked above");
            if let Err(e) = writer.append("result", &payload) {
                // Durability degrades loudly (metric + recorded cause);
                // the in-memory drain continues.
                self.journal_degraded
                    .get_or_insert_with(|| format!("journal append failed: {e}"));
                self.journal = None;
                if let Some(m) = &self.metrics {
                    m.journal_degraded_total.inc();
                }
            }
        }
        let applied = self.queue.apply_remote(job, slice, out);
        if applied {
            if let Some(lease) = self.leases.get(&job) {
                if lease.slice == slice {
                    self.leases.remove(&job);
                }
            }
        }
        if let Some(m) = &self.metrics {
            if applied {
                m.results_applied_total.inc();
            } else {
                m.results_stale_total.inc();
            }
        }
        applied
    }

    /// Stores a worker's end-of-drain metrics snapshot for fleet
    /// aggregation ([`MetricsRegistry::render_merged`]).
    pub fn add_worker_snapshot(&mut self, worker: impl Into<String>, snapshot: MetricsSnapshot) {
        self.worker_snapshots.push((worker.into(), snapshot));
    }

    /// Worker snapshots collected so far, in arrival order (arrival
    /// order is fine here: merged counters are commutative sums).
    pub fn worker_snapshots(&self) -> &[(String, MetricsSnapshot)] {
        &self.worker_snapshots
    }

    /// Consumes the coordinator, returning the drained queue.
    pub fn into_queue(self) -> JobQueue {
        self.queue
    }

    /// True once every job reached `Completed` (drain succeeded
    /// everywhere; portfolio losers excepted — they park cancelled).
    pub fn all_completed(&self) -> bool {
        let portfolio_jobs: std::collections::HashSet<usize> = self
            .portfolios
            .iter()
            .flat_map(|p| p.arms.iter().copied())
            .collect();
        self.queue
            .jobs()
            .iter()
            .enumerate()
            .filter(|(id, _)| !portfolio_jobs.contains(id))
            .all(|(_, j)| j.state() == SessionState::Completed)
    }
}
