//! `bgr-worker`: a pull-based slice worker for `bgr-coordinator`
//! (DESIGN.md §15).
//!
//! Connects to the coordinator (`--addr`, or `--addr-file` to poll a
//! file the coordinator writes after binding port 0), drains leases
//! until the coordinator settles, ships its metrics snapshot, and
//! exits. `--metrics-out` additionally writes this worker's own
//! Prometheus exposition for per-worker CI artifacts. `--die-on-lease
//! K` is crash injection: take the K-th lease and vanish, leaving the
//! lease to expire and be reassigned.
//!
//! Usage:
//!   bgr-worker [--addr HOST:PORT | --addr-file PATH] [--name NAME]
//!              [--die-on-lease K] [--metrics-out PATH]

use std::process::ExitCode;
use std::time::Duration;

use bgr_metrics::MetricsRegistry;
use bgr_net::{run_worker, WorkerOptions};

struct Args {
    addr: Option<String>,
    addr_file: Option<String>,
    name: String,
    die_on_lease: Option<u64>,
    metrics_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bgr-worker [--addr HOST:PORT | --addr-file PATH] [--name NAME]\n\
         \x20                 [--die-on-lease K] [--metrics-out PATH]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        addr_file: None,
        name: format!("worker-{}", std::process::id()),
        die_on_lease: None,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(value(&flag)),
            "--addr-file" => args.addr_file = Some(value(&flag)),
            "--name" => args.name = value(&flag),
            "--die-on-lease" => {
                let v = value(&flag);
                args.die_on_lease = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("bad value for --die-on-lease: {v}");
                    usage()
                }));
            }
            "--metrics-out" => args.metrics_out = Some(value(&flag)),
            _ => usage(),
        }
    }
    if args.addr.is_none() && args.addr_file.is_none() {
        eprintln!("one of --addr or --addr-file is required");
        usage()
    }
    args
}

/// Polls `path` until the coordinator has written its bound address
/// (up to ~30 s).
fn wait_addr_file(path: &str) -> Option<String> {
    for _ in 0..3000 {
        if let Ok(text) = std::fs::read_to_string(path) {
            let addr = text.trim();
            if !addr.is_empty() {
                return Some(addr.to_string());
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    None
}

fn main() -> ExitCode {
    let args = parse_args();
    let addr = match (&args.addr, &args.addr_file) {
        (Some(addr), _) => addr.clone(),
        (None, Some(path)) => match wait_addr_file(path) {
            Some(addr) => addr,
            None => {
                eprintln!("timed out waiting for addr file {path}");
                return ExitCode::FAILURE;
            }
        },
        (None, None) => unreachable!("parse_args requires one"),
    };
    let mut opts = WorkerOptions::named(&args.name);
    opts.die_on_lease = args.die_on_lease;
    let registry = MetricsRegistry::new();
    let report = match run_worker(&addr, &opts, &registry) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("worker {}: {e}", args.name);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "worker {}: {} lease(s), {} slice(s){}",
        args.name,
        report.leases,
        report.slices,
        if report.died {
            " — died by injection"
        } else {
            ""
        }
    );
    if let Some(path) = &args.metrics_out {
        if std::fs::write(path, registry.render_prometheus()).is_err() {
            eprintln!("cannot write metrics to {path}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
