//! `bgr-worker`: a pull-based slice worker for `bgr-coordinator`
//! (DESIGN.md §15).
//!
//! Connects to the coordinator (`--addr`, or `--addr-file` to poll a
//! file the coordinator writes after binding port 0), drains leases
//! until the coordinator settles, ships its metrics snapshot, and
//! exits. Transport faults are absorbed by reconnecting with bounded
//! exponential backoff (`--retry-max`/`--retry-base-ms`/
//! `--retry-cap-ms`); `--token` authenticates against a coordinator
//! running with a shared secret. `--metrics-out` additionally writes
//! this worker's own Prometheus exposition for per-worker CI artifacts.
//!
//! Crash injection for CI and chaos runs:
//!
//! * `--die-on-lease K` — take the K-th lease and vanish, leaving the
//!   lease to expire and be reassigned;
//! * `--die-after-result K` — sever the connection right after
//!   submitting the K-th result, then recover through the ordinary
//!   reconnect-and-resend path (the worker keeps running);
//! * `--slice-delay-ms T` — sleep T ms inside every slice, simulating
//!   slow work (the in-slice heartbeat keeps the lease alive).
//!
//! Usage:
//!   bgr-worker [--addr HOST:PORT | --addr-file PATH] [--name NAME]
//!              [--token SECRET] [--die-on-lease K]
//!              [--die-after-result K] [--slice-delay-ms T]
//!              [--retry-max N] [--retry-base-ms T] [--retry-cap-ms T]
//!              [--metrics-out PATH]

use std::process::ExitCode;
use std::time::Duration;

use bgr_metrics::MetricsRegistry;
use bgr_net::{run_worker, WorkerOptions};

struct Args {
    addr: Option<String>,
    addr_file: Option<String>,
    name: String,
    token: Option<String>,
    die_on_lease: Option<u64>,
    die_after_result: Option<u64>,
    slice_delay_ms: Option<u64>,
    retry_max: Option<u64>,
    retry_base_ms: Option<u64>,
    retry_cap_ms: Option<u64>,
    metrics_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bgr-worker [--addr HOST:PORT | --addr-file PATH] [--name NAME]\n\
         \x20                 [--token SECRET] [--die-on-lease K]\n\
         \x20                 [--die-after-result K] [--slice-delay-ms T]\n\
         \x20                 [--retry-max N] [--retry-base-ms T] [--retry-cap-ms T]\n\
         \x20                 [--metrics-out PATH]"
    );
    std::process::exit(2)
}

fn parse_num(flag: &str, v: &str) -> u64 {
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad value for {flag}: {v}");
        usage()
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        addr_file: None,
        name: format!("worker-{}", std::process::id()),
        token: None,
        die_on_lease: None,
        die_after_result: None,
        slice_delay_ms: None,
        retry_max: None,
        retry_base_ms: None,
        retry_cap_ms: None,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(value(&flag)),
            "--addr-file" => args.addr_file = Some(value(&flag)),
            "--name" => args.name = value(&flag),
            "--token" => args.token = Some(value(&flag)),
            "--die-on-lease" => args.die_on_lease = Some(parse_num(&flag, &value(&flag))),
            "--die-after-result" => args.die_after_result = Some(parse_num(&flag, &value(&flag))),
            "--slice-delay-ms" => args.slice_delay_ms = Some(parse_num(&flag, &value(&flag))),
            "--retry-max" => args.retry_max = Some(parse_num(&flag, &value(&flag))),
            "--retry-base-ms" => args.retry_base_ms = Some(parse_num(&flag, &value(&flag))),
            "--retry-cap-ms" => args.retry_cap_ms = Some(parse_num(&flag, &value(&flag))),
            "--metrics-out" => args.metrics_out = Some(value(&flag)),
            _ => usage(),
        }
    }
    if args.addr.is_none() && args.addr_file.is_none() {
        eprintln!("one of --addr or --addr-file is required");
        usage()
    }
    args
}

/// Polls `path` until the coordinator has written its bound address
/// (up to ~30 s).
fn wait_addr_file(path: &str) -> Option<String> {
    for _ in 0..3000 {
        if let Ok(text) = std::fs::read_to_string(path) {
            let addr = text.trim();
            if !addr.is_empty() {
                return Some(addr.to_string());
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    None
}

fn main() -> ExitCode {
    let args = parse_args();
    let addr = match (&args.addr, &args.addr_file) {
        (Some(addr), _) => addr.clone(),
        (None, Some(path)) => match wait_addr_file(path) {
            Some(addr) => addr,
            None => {
                eprintln!("timed out waiting for addr file {path}");
                return ExitCode::FAILURE;
            }
        },
        (None, None) => unreachable!("parse_args requires one"),
    };
    let mut opts = WorkerOptions::named(&args.name);
    opts.token = args.token;
    opts.die_on_lease = args.die_on_lease;
    opts.die_after_result = args.die_after_result;
    opts.slice_delay = args.slice_delay_ms.map(Duration::from_millis);
    if let Some(n) = args.retry_max {
        opts.retry_max = n.min(u64::from(u32::MAX)) as u32;
    }
    if let Some(t) = args.retry_base_ms {
        opts.retry_base = Duration::from_millis(t);
    }
    if let Some(t) = args.retry_cap_ms {
        opts.retry_cap = Duration::from_millis(t);
    }
    let registry = MetricsRegistry::new();
    let report = match run_worker(&addr, &opts, &registry) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("worker {}: {e}", args.name);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "worker {}: {} lease(s), {} slice(s), {} reconnect(s){}",
        args.name,
        report.leases,
        report.slices,
        report.reconnects,
        if report.died {
            " — died by injection"
        } else {
            ""
        }
    );
    if let Some(path) = &args.metrics_out {
        if std::fs::write(path, registry.render_prometheus()).is_err() {
            eprintln!("cannot write metrics to {path}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
