//! `bgr-coordinator`: serve a fleet of `bgr-worker` processes draining
//! synthesized routing jobs over TCP (DESIGN.md §15).
//!
//! Synthesizes `--jobs` small designs (seeds `--seed ..`), submits them
//! under a per-slice selection quota, binds `--addr`, and serves leases
//! until the queue drains. `--portfolio N` additionally races the first
//! job's step-0 checkpoint under `N` configuration arms (cycling
//! criteria orders) with a per-arm slice budget.
//!
//! Fleet observability:
//!
//! * `--metrics-out PATH` — after the drain, writes the coordinator's
//!   registry merged with every worker's shipped snapshot
//!   (`MetricsRegistry::render_merged`);
//! * `--trace-out DIR` — writes each job's stream as `job<i>.jsonl`;
//! * `--addr-file PATH` — writes the actually-bound address (written
//!   atomically; lets CI bind port 0 and point workers at the file).
//!
//! Crash recovery and auth (DESIGN.md §15 "Failure model"):
//!
//! * `--journal PATH` — write-ahead outcome journal. Every applied
//!   RESULT is journaled before it mutates the queue; if PATH already
//!   exists (this process is a restart after a kill), the journal is
//!   replayed first — the queue resumes at the exact pre-crash state
//!   and the finished drain is byte-identical to an uninterrupted run;
//! * `--token SECRET` — require workers to present SECRET in HELLO
//!   (constant-time compare; mismatches are refused with `Nack`).
//!
//! Overload governance (DESIGN.md §15 "Overload & degradation
//! ladder") — every knob defaults off, and an un-tripped knob leaves
//! the drain byte-identical to an ungoverned one:
//!
//! * `--max-jobs N` — admission cap on live jobs; over-cap submissions
//!   are rejected up front with a structured verdict;
//! * `--max-conns N` — connection-concurrency cap; excess connections
//!   are answered `Nack(busy)` with a retry hint and closed;
//! * `--deadline-ms T` — per-job wall-clock slice budget; expired jobs
//!   fail with `DeadlineExpired` instead of consuming more fleet time;
//! * `--max-leases N` — live-lease table depth cap; lease requests at
//!   the cap are deferred (`NoWork`), throttling fleet concurrency.
//!
//! Exit code 1 if any non-portfolio job failed or a race ended with no
//! winner.
//!
//! Usage:
//!   bgr-coordinator [--addr HOST:PORT] [--addr-file PATH] [--jobs N]
//!                   [--quota Q] [--seed S] [--lease-timeout-ms T]
//!                   [--portfolio N] [--arm-slices K]
//!                   [--journal PATH] [--token SECRET]
//!                   [--max-jobs N] [--max-conns N] [--deadline-ms T]
//!                   [--max-leases N]
//!                   [--metrics-out PATH] [--trace-out DIR]

use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

use bgr_core::config::CriteriaOrder;
use bgr_io::JournalWriter;
use bgr_metrics::MetricsRegistry;
use bgr_net::{serve_drain_with, Coordinator, DrainOptions};
use bgr_serve::{JobQueue, QueuePolicy};

struct Args {
    addr: String,
    addr_file: Option<String>,
    jobs: u64,
    quota: Option<u64>,
    seed: u64,
    lease_timeout_ms: u64,
    portfolio: u64,
    arm_slices: u64,
    journal: Option<String>,
    token: Option<String>,
    max_jobs: Option<u64>,
    max_conns: Option<u64>,
    deadline_ms: Option<u64>,
    max_leases: Option<u64>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bgr-coordinator [--addr HOST:PORT] [--addr-file PATH] [--jobs N]\n\
         \x20                      [--quota Q] [--seed S] [--lease-timeout-ms T]\n\
         \x20                      [--portfolio N] [--arm-slices K]\n\
         \x20                      [--journal PATH] [--token SECRET]\n\
         \x20                      [--max-jobs N] [--max-conns N] [--deadline-ms T]\n\
         \x20                      [--max-leases N]\n\
         \x20                      [--metrics-out PATH] [--trace-out DIR]"
    );
    std::process::exit(2)
}

fn parse_num(flag: &str, v: &str) -> u64 {
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad value for {flag}: {v}");
        usage()
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        addr_file: None,
        jobs: 4,
        quota: Some(8),
        seed: 1,
        lease_timeout_ms: 5000,
        portfolio: 0,
        arm_slices: 64,
        journal: None,
        token: None,
        max_jobs: None,
        max_conns: None,
        deadline_ms: None,
        max_leases: None,
        metrics_out: None,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value(&flag),
            "--addr-file" => args.addr_file = Some(value(&flag)),
            "--jobs" => args.jobs = parse_num(&flag, &value(&flag)),
            "--quota" => {
                let v = value(&flag);
                args.quota = if v == "none" {
                    None
                } else {
                    Some(parse_num(&flag, &v))
                };
            }
            "--seed" => args.seed = parse_num(&flag, &value(&flag)),
            "--lease-timeout-ms" => args.lease_timeout_ms = parse_num(&flag, &value(&flag)),
            "--portfolio" => args.portfolio = parse_num(&flag, &value(&flag)),
            "--arm-slices" => args.arm_slices = parse_num(&flag, &value(&flag)),
            "--journal" => args.journal = Some(value(&flag)),
            "--token" => args.token = Some(value(&flag)),
            "--max-jobs" => args.max_jobs = Some(parse_num(&flag, &value(&flag))),
            "--max-conns" => args.max_conns = Some(parse_num(&flag, &value(&flag))),
            "--deadline-ms" => args.deadline_ms = Some(parse_num(&flag, &value(&flag))),
            "--max-leases" => args.max_leases = Some(parse_num(&flag, &value(&flag))),
            "--metrics-out" => args.metrics_out = Some(value(&flag)),
            "--trace-out" => args.trace_out = Some(value(&flag)),
            _ => usage(),
        }
    }
    args
}

/// The arm configurations a `--portfolio N` race cycles through:
/// different improvement-criteria orders are genuinely different
/// strategies; repeats beyond the three orders vary only thread count,
/// which the determinism invariant makes a guaranteed tie (won by the
/// lower arm index).
fn arm_configs(n: u64) -> Vec<(String, bgr_core::RouterConfig)> {
    let orders = [
        CriteriaOrder::DelayFirst,
        CriteriaOrder::AreaFirst,
        CriteriaOrder::DensityOnly,
    ];
    (0..n)
        .map(|i| {
            let config = bgr_core::RouterConfig {
                criteria_order: orders[(i as usize) % orders.len()],
                threads: 1 + (i as usize) / orders.len(),
                ..bgr_core::RouterConfig::default()
            };
            (format!("arm{i}"), config)
        })
        .collect()
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut queue = JobQueue::new();
    let registry = MetricsRegistry::new();
    queue.attach_metrics(bgr_serve::ServeMetrics::register(&registry));
    queue.set_policy(QueuePolicy {
        max_jobs: args.max_jobs.map(|n| n as usize),
        max_checkpoint_bytes: None,
        deadline_ms: args.deadline_ms,
    });
    for i in 0..args.jobs {
        let params = bgr_gen::GenParams::small(args.seed + i);
        let design = bgr_gen::generate(&params);
        let placement = bgr_gen::place_design(&design, &params, bgr_gen::PlacementStyle::EvenFeed);
        match queue.try_submit(
            format!("job{i}"),
            design.circuit,
            placement,
            design.constraints,
            bgr_core::RouterConfig::default(),
            args.quota,
        ) {
            Ok(_) => {}
            Err(verdict) => {
                // Shed at admission: the structured verdict is the
                // whole story; the admitted jobs still drain.
                println!("job{i} rejected ({}): {verdict}", verdict.code());
            }
        }
    }
    let mut coordinator = Coordinator::new(queue, Duration::from_millis(args.lease_timeout_ms))
        .with_metrics(&registry)
        .with_max_live_leases(args.max_leases.map(|n| n as usize));
    if args.portfolio > 0 {
        let spec = match coordinator.queue_mut().lease_spec(0) {
            Ok(Some(spec)) => spec,
            other => {
                eprintln!("cannot materialize portfolio base checkpoint: {other:?}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = coordinator.race_portfolio(
            "race0",
            &spec.checkpoint,
            &arm_configs(args.portfolio),
            args.quota,
            args.arm_slices,
        ) {
            eprintln!("portfolio submission failed: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "racing {} arms of job 0 ({} slices budget each)",
            args.portfolio, args.arm_slices
        );
    }
    // Journal replay must happen after submission (same jobs, same
    // order as the run that wrote it) and before serving.
    if let Some(path) = &args.journal {
        let existing = std::path::Path::new(path).exists();
        if existing {
            let bytes = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("cannot read journal {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match coordinator.replay_journal(&bytes) {
                Ok(stats) => println!(
                    "journal {path}: replayed {} result(s) ({} stale)",
                    stats.applied, stats.stale
                ),
                Err(e) => {
                    eprintln!("journal {path} is damaged: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let writer = if existing {
            // Crash-recovery attach: a kill mid-append leaves a torn
            // tail, which `recover` truncates so appends land on a
            // record boundary (`open_append` would refuse the tear).
            JournalWriter::recover(path).map(|(_, tail, w)| {
                if let bgr_io::JournalTail::Truncated { at } = tail {
                    println!("journal {path}: torn tail truncated at byte {at}");
                }
                w
            })
        } else {
            JournalWriter::create(path)
        };
        match writer {
            Ok(w) => coordinator = coordinator.with_journal(w),
            Err(e) => {
                eprintln!("cannot open journal {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let bound = listener.local_addr().expect("bound address").to_string();
    println!("coordinator serving on {bound}");
    if let Some(path) = &args.addr_file {
        // Write-then-rename so workers polling the file never read a
        // partial address.
        let tmp = format!("{path}.tmp");
        if std::fs::write(&tmp, &bound)
            .and_then(|()| std::fs::rename(&tmp, path))
            .is_err()
        {
            eprintln!("cannot write addr file {path}");
            return ExitCode::FAILURE;
        }
    }
    let drain_opts = DrainOptions {
        token: args.token.clone(),
        max_conns: args.max_conns.map(|n| n as usize),
        ..DrainOptions::default()
    };
    let coordinator = match serve_drain_with(listener, coordinator, &drain_opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("drain failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;
    if let Some(message) = coordinator.journal_degradation() {
        eprintln!("journal degraded mid-drain: {message}");
        ok = false;
    }
    for (i, job) in coordinator.queue().jobs().iter().enumerate() {
        println!(
            "job {i} [{}]: state={} slices={} selections={} events={}",
            job.name(),
            job.state().label(),
            job.slices(),
            job.selections_done(),
            job.events_emitted()
        );
    }
    if !coordinator.all_completed() {
        ok = false;
    }
    for p in coordinator.portfolios() {
        match p.winner {
            Some(pos) => {
                let id = p.arms[pos];
                let job = coordinator.queue().job(id);
                let verdict = job.verdict().expect("winner has a verdict");
                println!(
                    "portfolio {}: winner arm {pos} ({}) margin={}ps area={} tracks",
                    p.name,
                    job.name(),
                    verdict.worst_margin_ps,
                    verdict.area_tracks
                );
            }
            None => {
                println!("portfolio {}: no arm finished within budget", p.name);
                ok = false;
            }
        }
    }
    println!(
        "fleet: {} worker snapshot(s) merged",
        coordinator.worker_snapshots().len()
    );
    if let Some(path) = &args.metrics_out {
        let snaps: Vec<_> = coordinator
            .worker_snapshots()
            .iter()
            .map(|(_, s)| s.clone())
            .collect();
        if std::fs::write(path, registry.render_merged(&snaps)).is_err() {
            eprintln!("cannot write merged metrics to {path}");
            ok = false;
        }
    }
    if let Some(dir) = &args.trace_out {
        if std::fs::create_dir_all(dir).is_err() {
            eprintln!("cannot create trace dir {dir}");
            ok = false;
        } else {
            for (i, job) in coordinator.queue().jobs().iter().enumerate() {
                let path = format!("{dir}/job{i}.jsonl");
                if std::fs::write(&path, job.stream()).is_err() {
                    eprintln!("cannot write {path}");
                    ok = false;
                }
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
