//! `bgr-chaos-proxy`: a deterministic fault-injection TCP proxy for
//! `bgr-net` fleets (DESIGN.md §15 "Failure model").
//!
//! Sits between `bgr-worker` processes and a `bgr-coordinator`,
//! injecting connection resets (frame-boundary and mid-frame), stalls,
//! and duplicate delivery on a SplitMix64 schedule that is a pure
//! function of `--seed` — a failing chaos run replays exactly.
//!
//! `--upstream-file` re-reads the coordinator's `--addr-file` on every
//! inbound connection, so a coordinator killed and restarted on a new
//! ephemeral port is picked up transparently; workers reconnect through
//! the proxy as if the coordinator had merely stalled.
//!
//! Runs until killed. Prints the listening address on stdout (and to
//! `--listen-file`, written atomically, for scripts that race startup).
//!
//! Usage:
//!   bgr-chaos-proxy (--upstream HOST:PORT | --upstream-file PATH)
//!                   [--listen HOST:PORT] [--listen-file PATH]
//!                   [--seed S] [--reset-per-frame P] [--mid-frame P]
//!                   [--stall-per-frame P] [--stall-ms T]
//!                   [--duplicate-per-frame P] [--stats-every-ms T]

use std::process::ExitCode;
use std::time::Duration;

use bgr_net::chaos::{ChaosOptions, ChaosUpstream};

struct Args {
    listen: String,
    listen_file: Option<String>,
    upstream: Option<ChaosUpstream>,
    opts: ChaosOptions,
    stats_every_ms: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: bgr-chaos-proxy (--upstream HOST:PORT | --upstream-file PATH)\n\
         \x20                      [--listen HOST:PORT] [--listen-file PATH]\n\
         \x20                      [--seed S] [--reset-per-frame P] [--mid-frame P]\n\
         \x20                      [--stall-per-frame P] [--stall-ms T]\n\
         \x20                      [--duplicate-per-frame P] [--stats-every-ms T]"
    );
    std::process::exit(2)
}

fn parse_num(flag: &str, v: &str) -> u64 {
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad value for {flag}: {v}");
        usage()
    })
}

fn parse_prob(flag: &str, v: &str) -> f64 {
    let p: f64 = v.parse().unwrap_or_else(|_| {
        eprintln!("bad value for {flag}: {v}");
        usage()
    });
    if !(0.0..=1.0).contains(&p) {
        eprintln!("{flag} must be a probability in [0, 1], got {v}");
        usage()
    }
    p
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: "127.0.0.1:0".to_string(),
        listen_file: None,
        upstream: None,
        opts: ChaosOptions::quiet(1),
        stats_every_ms: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
        match flag.as_str() {
            "--listen" => args.listen = value(&flag),
            "--listen-file" => args.listen_file = Some(value(&flag)),
            "--upstream" => args.upstream = Some(ChaosUpstream::Addr(value(&flag))),
            "--upstream-file" => {
                args.upstream = Some(ChaosUpstream::AddrFile(value(&flag).into()));
            }
            "--seed" => args.opts.seed = parse_num(&flag, &value(&flag)),
            "--reset-per-frame" => args.opts.reset_per_frame = parse_prob(&flag, &value(&flag)),
            "--mid-frame" => args.opts.mid_frame = parse_prob(&flag, &value(&flag)),
            "--stall-per-frame" => args.opts.stall_per_frame = parse_prob(&flag, &value(&flag)),
            "--stall-ms" => {
                args.opts.stall = Duration::from_millis(parse_num(&flag, &value(&flag)));
            }
            "--duplicate-per-frame" => {
                args.opts.duplicate_per_frame = parse_prob(&flag, &value(&flag));
            }
            "--stats-every-ms" => args.stats_every_ms = parse_num(&flag, &value(&flag)),
            _ => usage(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let Some(upstream) = args.upstream else {
        eprintln!("one of --upstream / --upstream-file is required");
        usage()
    };
    let proxy =
        match bgr_net::chaos::ChaosProxy::start_on(&args.listen, upstream, args.opts.clone()) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("cannot bind {}: {e}", args.listen);
                return ExitCode::FAILURE;
            }
        };
    println!(
        "chaos proxy listening on {} (seed {})",
        proxy.addr(),
        args.opts.seed
    );
    if let Some(path) = &args.listen_file {
        // Write-then-rename so pollers never read a partial address.
        let tmp = format!("{path}.tmp");
        if std::fs::write(&tmp, proxy.addr())
            .and_then(|()| std::fs::rename(&tmp, path))
            .is_err()
        {
            eprintln!("cannot write listen file {path}");
            return ExitCode::FAILURE;
        }
    }
    loop {
        std::thread::sleep(Duration::from_millis(if args.stats_every_ms == 0 {
            60_000
        } else {
            args.stats_every_ms
        }));
        if args.stats_every_ms > 0 {
            let s = proxy.stats();
            println!(
                "chaos: conns={} frames={} resets={} (mid-frame {}) stalls={} duplicates={}",
                s.connections, s.frames, s.resets, s.mid_frame_resets, s.stalls, s.duplicates
            );
        }
    }
}
