//! The coordinator's TCP serving loop.
//!
//! One handler thread per worker connection; every worker frame gets
//! exactly one reply (strict request/response, no pipelining):
//!
//! | worker sends        | coordinator replies                        |
//! |---------------------|--------------------------------------------|
//! | `Hello`             | `Welcome`, or `Nack(version-skew)` + close |
//! | `LeaseReq`          | `Lease` or `NoWork{settled}`               |
//! | `Result`            | `Lease` or `NoWork{settled}` (next work)   |
//! | `Heartbeat`         | `Heartbeat` (echo)                         |
//! | `Metrics`           | `Bye`                                      |
//! | `Bye`               | (close)                                    |
//!
//! A dropped connection releases nothing: the worker's lease stays
//! until its deadline, then [`Coordinator::next_lease`] re-grants the
//! identical spec to the next asker. That is the crash-recovery path —
//! exercised by `tests/distributed_determinism.rs` with a worker that
//! takes a lease and dies.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bgr_metrics::MetricsSnapshot;

use crate::coordinator::Coordinator;
use crate::frame::PROTO_VERSION;
use crate::proto::{recv, send, Message, ProtoError};

/// Serving policy knobs for [`serve_drain_with`].
#[derive(Debug, Clone)]
pub struct DrainOptions {
    /// Shared-secret auth token. When set, a HELLO must carry a
    /// matching token (compared constant-time) or the connection is
    /// answered `Nack(auth)` and closed. When `None`, any HELLO is
    /// accepted (loopback/dev topologies).
    pub token: Option<String>,
    /// Connection-concurrency cap. When set, an accepted connection
    /// that would exceed the cap is answered `Nack(busy)` carrying
    /// [`Self::retry_after_ms`] and closed — load is shed at the door
    /// instead of queueing unbounded handler threads. `None` (the
    /// default) accepts every connection, exactly as before the cap
    /// existed.
    pub max_conns: Option<usize>,
    /// Retry hint carried on `Nack(busy)` replies, in milliseconds.
    /// Workers sleep at least this long before reconnecting (their
    /// deterministic backoff ladder still applies on top).
    pub retry_after_ms: u64,
}

impl Default for DrainOptions {
    fn default() -> Self {
        Self {
            token: None,
            max_conns: None,
            retry_after_ms: 50,
        }
    }
}

/// Constant-time equality over secrets: the comparison's runtime
/// depends only on the *lengths*, never on where the bytes diverge, so
/// a remote cannot binary-search the token byte by byte off timing.
fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = a.len() ^ b.len();
    let n = a.len().max(b.len());
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

fn lease_or_nowork(coord: &Mutex<Coordinator>) -> Message {
    let mut c = coord.lock().expect("coordinator mutex");
    match c.next_lease(Instant::now()) {
        Some(spec) => Message::Lease {
            job: spec.job as u64,
            slice: spec.slice,
            quota: spec.quota,
            deadline_ms: spec.deadline_ms,
            checkpoint: spec.checkpoint,
        },
        None => Message::NoWork {
            settled: c.settled(),
        },
    }
}

fn nack(w: &mut TcpStream, code: &str, detail: String) -> Result<(), ProtoError> {
    nack_with_hint(w, code, detail, 0)
}

fn nack_with_hint(
    w: &mut TcpStream,
    code: &str,
    detail: String,
    retry_after_ms: u64,
) -> Result<(), ProtoError> {
    send(
        w,
        &Message::Nack {
            code: code.to_string(),
            detail,
            retry_after_ms,
        },
    )
}

/// Serves one worker connection until it disconnects.
fn handle_worker(
    mut stream: TcpStream,
    coord: &Mutex<Coordinator>,
    opts: &DrainOptions,
) -> Result<(), ProtoError> {
    let _ = stream.set_nodelay(true);
    let worker = match recv(&mut stream)? {
        Message::Hello {
            version,
            worker,
            token,
        } if version == PROTO_VERSION => {
            if let Some(want) = &opts.token {
                let got = token.unwrap_or_default();
                if !ct_eq(want.as_bytes(), got.as_bytes()) {
                    nack(
                        &mut stream,
                        "auth",
                        // Never echo what was presented.
                        "token mismatch".to_string(),
                    )?;
                    return Ok(());
                }
            }
            let heartbeat_ms = coord
                .lock()
                .expect("coordinator mutex")
                .heartbeat_cadence_ms();
            send(
                &mut stream,
                &Message::Welcome {
                    version: PROTO_VERSION,
                    heartbeat_ms,
                },
            )?;
            worker
        }
        Message::Hello { version, .. } => {
            nack(
                &mut stream,
                "version-skew",
                format!("peer v{version}, local v{PROTO_VERSION}"),
            )?;
            return Ok(());
        }
        other => {
            nack(
                &mut stream,
                "bad-request",
                format!("expected HELLO, got kind {}", other.kind()),
            )?;
            return Ok(());
        }
    };
    loop {
        let msg = match recv(&mut stream) {
            Ok(m) => m,
            // A vanished worker is the crash path, not an error: its
            // lease expires and is re-granted.
            Err(ProtoError::Frame(_)) => return Ok(()),
            // A well-framed but malformed payload is a protocol
            // violation: answer Nack and close. Connection-local —
            // the drain itself is unaffected.
            Err(e) => {
                let _ = nack(&mut stream, "bad-request", e.to_string());
                return Ok(());
            }
        };
        match msg {
            Message::LeaseReq => {
                let reply = lease_or_nowork(coord);
                send(&mut stream, &reply)?;
            }
            Message::Result {
                job,
                slice,
                outcome,
            } => {
                match outcome.into_outcome() {
                    Ok(out) => {
                        coord.lock().expect("coordinator mutex").apply_result(
                            job as usize,
                            slice,
                            out,
                        );
                        // Stale results are harmless duplicates (the
                        // applied one was byte-identical); either way
                        // the worker just needs its next instruction.
                        let reply = lease_or_nowork(coord);
                        send(&mut stream, &reply)?;
                    }
                    Err(e) => nack(&mut stream, "bad-request", e.to_string())?,
                }
            }
            Message::Heartbeat { job, slice } => {
                coord.lock().expect("coordinator mutex").heartbeat(
                    job as usize,
                    slice,
                    Instant::now(),
                );
                send(&mut stream, &Message::Heartbeat { job, slice })?;
            }
            Message::Metrics { snapshot } => match MetricsSnapshot::parse(&snapshot) {
                Ok(snap) => {
                    coord
                        .lock()
                        .expect("coordinator mutex")
                        .add_worker_snapshot(worker.clone(), snap);
                    send(&mut stream, &Message::Bye)?;
                }
                Err(e) => nack(&mut stream, "bad-request", e.to_string())?,
            },
            Message::Bye => {
                let _ = stream.flush();
                return Ok(());
            }
            other => nack(
                &mut stream,
                "bad-request",
                format!("unexpected kind {}", other.kind()),
            )?,
        }
    }
}

/// Decrements the live-connection counter on drop, so even a panicking
/// handler thread un-counts itself and cannot wedge the accept loop's
/// settle check.
struct ActiveGuard(Arc<AtomicUsize>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Serves `listener` until the coordinator settles *and* every worker
/// connection has closed, then returns the drained coordinator (queue
/// streams, portfolio decisions, collected worker snapshots).
///
/// # Errors
///
/// [`ProtoError::Frame`] when the listener cannot be polled. Anything a
/// single worker connection does wrong — malformed payloads, version
/// skew, vanishing mid-stream — is answered with `Nack` where the
/// stream still works and affects only that connection: the drained
/// coordinator is returned regardless.
///
/// # Panics
///
/// Panics if a handler thread panicked (nothing in the handler should;
/// the drain still settles first, because [`ActiveGuard`] un-counts the
/// dead connection).
pub fn serve_drain(
    listener: TcpListener,
    coordinator: Coordinator,
) -> Result<Coordinator, ProtoError> {
    serve_drain_with(listener, coordinator, &DrainOptions::default())
}

/// [`serve_drain`] with explicit [`DrainOptions`] (auth token,
/// connection-concurrency cap).
///
/// # Errors
///
/// As [`serve_drain`].
///
/// # Panics
///
/// As [`serve_drain`].
pub fn serve_drain_with(
    listener: TcpListener,
    coordinator: Coordinator,
    options: &DrainOptions,
) -> Result<Coordinator, ProtoError> {
    listener.set_nonblocking(true).map_err(|e| {
        ProtoError::Frame(crate::frame::FrameError::Io {
            message: e.to_string(),
        })
    })?;
    let coord = Arc::new(Mutex::new(coordinator));
    let active = Arc::new(AtomicUsize::new(0));
    let mut handlers = Vec::new();
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                if let Some(cap) = options.max_conns {
                    if active.load(Ordering::SeqCst) >= cap {
                        // Shed at the door: one busy-Nack with the
                        // retry hint, then close. No handler thread is
                        // spawned, so the cap bounds live threads too.
                        coord
                            .lock()
                            .expect("coordinator mutex")
                            .note_connection_shed();
                        let _ = nack_with_hint(
                            &mut stream,
                            "busy",
                            format!("connection slots exhausted ({cap} max)"),
                            options.retry_after_ms,
                        );
                        let _ = stream.flush();
                        continue;
                    }
                }
                let coord = Arc::clone(&coord);
                let opts = options.clone();
                active.fetch_add(1, Ordering::SeqCst);
                let guard = ActiveGuard(Arc::clone(&active));
                handlers.push(std::thread::spawn(move || {
                    let _guard = guard;
                    handle_worker(stream, &coord, &opts)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                let done = active.load(Ordering::SeqCst) == 0
                    && coord.lock().expect("coordinator mutex").settled();
                if done {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                return Err(ProtoError::Frame(crate::frame::FrameError::Io {
                    message: e.to_string(),
                }))
            }
        }
    }
    drop(listener);
    for h in handlers {
        // A handler's Err is a send failure to a worker that already
        // misbehaved or vanished — connection-local by design, never a
        // reason to discard the fully drained coordinator.
        let _ = h.join().expect("worker handler thread");
    }
    Ok(Arc::try_unwrap(coord)
        .expect("all handler threads joined")
        .into_inner()
        .expect("coordinator mutex"))
}

#[cfg(test)]
mod tests {
    use super::ct_eq;

    #[test]
    fn ct_eq_matches_plain_equality() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"secret", b"secret"));
        assert!(!ct_eq(b"secret", b"secreT"));
        assert!(!ct_eq(b"secret", b"secre"));
        assert!(!ct_eq(b"", b"x"));
        assert!(!ct_eq(b"short", b"a much longer presented token"));
    }
}
