//! Typed messages atop the frame codec.
//!
//! Payloads are line-oriented text — `key value` lines plus
//! byte-length-prefixed blocks for multi-line text (checkpoints, trace
//! segments) — in the same self-describing style as the repo's other
//! interchange formats. Floats travel as `f64::to_bits` hex, exactly
//! like the checkpoint codec, so a verdict survives the wire
//! bit-identically. Decoding never panics; every malformed payload maps
//! to a structured [`ProtoError`].

use std::fmt;

use bgr_core::RouteError;
use bgr_serve::{FinishVerdict, SliceOutcome};

use crate::frame::{Frame, FrameError};

/// Why a payload failed to decode into a [`Message`] — or, for the
/// worker's retry layer, why a connection attempt or exchange failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The underlying frame was damaged.
    Frame(FrameError),
    /// The frame's kind byte names no known message.
    UnknownKind {
        /// The unknown discriminant.
        kind: u8,
    },
    /// The payload text does not parse as the kind's schema.
    Malformed {
        /// What went wrong, with field context.
        message: String,
    },
    /// A TCP connect failed, with its [`std::io::ErrorKind`] preserved
    /// so the retry layer can classify `ConnectionRefused`/`TimedOut`
    /// without string matching.
    Connect {
        /// The connect error's kind.
        kind: std::io::ErrorKind,
        /// The full error message, with the address.
        message: String,
    },
    /// The peer answered with a structured `Nack` refusal. Fatal for
    /// deterministic refusals (auth mismatch, version skew, ...);
    /// retryable for load shedding (`code == "busy"`), where
    /// `retry_after_ms` carries the coordinator's backoff hint.
    Refused {
        /// The Nack's stable machine-readable code.
        code: String,
        /// The Nack's human-readable detail.
        detail: String,
        /// The coordinator's retry-after hint in ms (0 = none given).
        retry_after_ms: u64,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Frame(e) => write!(f, "{e}"),
            Self::UnknownKind { kind } => write!(f, "unknown message kind {kind}"),
            Self::Malformed { message } => write!(f, "malformed payload: {message}"),
            Self::Connect { kind, message } => write!(f, "connect failed ({kind:?}): {message}"),
            Self::Refused { code, detail, .. } => write!(f, "peer refused [{code}]: {detail}"),
        }
    }
}

impl ProtoError {
    /// Whether reconnecting could plausibly clear this error.
    ///
    /// Retryable means the *transport* died or desynced — the stream
    /// was cut mid-frame, bytes were damaged in flight, or the peer was
    /// momentarily unreachable. A fresh connection re-handshakes and
    /// resumes; the coordinator's stale-slice rejection makes resent
    /// results harmless.
    ///
    /// Fatal means retrying reproduces the failure deterministically: a
    /// schema violation, an unknown message, a version skew, an
    /// oversize frame, or a deterministic refusal (wrong token). The
    /// one retryable refusal is `busy` — transient load shedding, where
    /// the coordinator explicitly invites a later retry.
    pub fn is_retryable(&self) -> bool {
        match self {
            Self::Refused { code, .. } => code == "busy",
            Self::Frame(e) => matches!(
                e,
                FrameError::Io { .. }
                    | FrameError::Truncated { .. }
                    | FrameError::ChecksumMismatch { .. }
                    | FrameError::BadMagic { .. }
            ),
            Self::Connect { kind, .. } => matches!(
                kind,
                std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::NotConnected
                    | std::io::ErrorKind::AddrNotAvailable
            ),
            Self::UnknownKind { .. } | Self::Malformed { .. } => false,
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<FrameError> for ProtoError {
    fn from(e: FrameError) -> Self {
        Self::Frame(e)
    }
}

fn malformed(message: impl Into<String>) -> ProtoError {
    ProtoError::Malformed {
        message: message.into(),
    }
}

/// A slice result in wire form: [`SliceOutcome`] minus the
/// non-serializable in-process artifacts (`Routed`, `AuditReport`),
/// whose deterministic content travels inside the [`FinishVerdict`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireOutcome {
    /// The session suspended at a fresh checkpoint.
    Suspended {
        /// Serialized checkpoint of the suspension.
        checkpoint: String,
        /// Stage label the session parked at.
        stage: String,
        /// Events emitted across the whole session.
        events_emitted: u64,
        /// Selections performed across the whole session.
        selections_done: u64,
        /// The slice's event lines at the stream's global offset.
        events_jsonl: String,
    },
    /// The session finished and was audited on the worker.
    Finished {
        /// Events emitted across the whole session.
        events_emitted: u64,
        /// Selections performed across the whole session.
        selections_done: u64,
        /// The slice's event lines at the stream's global offset.
        events_jsonl: String,
        /// The deterministic completion verdict.
        verdict: FinishVerdict,
    },
    /// The slice failed structurally on the worker.
    Failed {
        /// The structured error's display.
        message: String,
    },
}

/// Stage labels are `&'static str` throughout the serve layer; map a
/// wire string back onto the known set (a lease result can only park at
/// a pipeline stage the session state machine has).
fn intern_stage(label: &str) -> Result<&'static str, ProtoError> {
    const STAGES: &[&str] = &[
        "setup",
        "initial_routing",
        "recover_violate",
        "improve_delay",
        "improve_area",
        "finished",
    ];
    STAGES
        .iter()
        .find(|&&s| s == label)
        .copied()
        .ok_or_else(|| malformed(format!("unknown stage label {label:?}")))
}

impl WireOutcome {
    /// Projects an in-process outcome onto its wire form, dropping the
    /// artifacts that cannot (and need not) travel.
    pub fn from_outcome(out: &SliceOutcome) -> Self {
        match out {
            SliceOutcome::Suspended {
                checkpoint,
                stage,
                events_emitted,
                selections_done,
                events_jsonl,
            } => Self::Suspended {
                checkpoint: checkpoint.clone(),
                stage: (*stage).to_string(),
                events_emitted: *events_emitted,
                selections_done: *selections_done,
                events_jsonl: events_jsonl.clone(),
            },
            SliceOutcome::Finished {
                events_emitted,
                selections_done,
                events_jsonl,
                verdict,
                ..
            } => Self::Finished {
                events_emitted: *events_emitted,
                selections_done: *selections_done,
                events_jsonl: events_jsonl.clone(),
                verdict: verdict.clone(),
            },
            SliceOutcome::Failed { error } => Self::Failed {
                message: error.to_string(),
            },
        }
    }

    /// Reconstructs the [`SliceOutcome`] a coordinator applies.
    /// Remote finishes carry no `Routed`/`AuditReport`; remote failures
    /// surface as [`RouteError::Internal`] in phase `"remote"` — except
    /// a deadline abandonment, whose canonical message maps back onto
    /// [`RouteError::DeadlineExpired`] so coordinator-side accounting
    /// (the `bgr_deadline_missed_total` counter) matches the local
    /// path. The original budget does not travel; it lands as 0.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] on a stage label outside the session
    /// state machine's set.
    pub fn into_outcome(self) -> Result<SliceOutcome, ProtoError> {
        Ok(match self {
            Self::Suspended {
                checkpoint,
                stage,
                events_emitted,
                selections_done,
                events_jsonl,
            } => SliceOutcome::Suspended {
                checkpoint,
                stage: intern_stage(&stage)?,
                events_emitted,
                selections_done,
                events_jsonl,
            },
            Self::Finished {
                events_emitted,
                selections_done,
                events_jsonl,
                verdict,
            } => SliceOutcome::Finished {
                events_emitted,
                selections_done,
                events_jsonl,
                verdict,
                routed: None,
                report: None,
            },
            Self::Failed { message } => SliceOutcome::Failed {
                error: if message.starts_with("slice deadline expired") {
                    RouteError::DeadlineExpired { budget_ms: 0 }
                } else {
                    RouteError::Internal {
                        phase: "remote",
                        message,
                    }
                },
            },
        })
    }
}

/// Every message of the `bgr-net` protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker → coordinator: first frame of a connection.
    Hello {
        /// The worker's protocol version (checked against ours).
        version: u16,
        /// Self-chosen worker name (diagnostics and audit lines only —
        /// never a determinism input).
        worker: String,
        /// Shared-secret auth token, when the fleet runs with one. The
        /// frame checksum is integrity only; this is the authentication
        /// layer (compared constant-time on the coordinator).
        token: Option<String>,
    },
    /// Coordinator → worker: handshake accepted.
    Welcome {
        /// The coordinator's protocol version.
        version: u16,
        /// Heartbeat cadence the coordinator wants while a slice runs
        /// (derived from its lease timeout; 0 means "no preference").
        heartbeat_ms: u64,
    },
    /// Worker → coordinator: ready for a lease.
    LeaseReq,
    /// Coordinator → worker: one slice of work.
    Lease {
        /// Queue id of the job.
        job: u64,
        /// Slice index this lease produces.
        slice: u64,
        /// Per-slice selection quota.
        quota: Option<u64>,
        /// Remaining deadline budget in ms under the queue's policy
        /// (`Some(0)` = already expired, abandon without routing;
        /// `None` = no deadline governance).
        deadline_ms: Option<u64>,
        /// Checkpoint to resume from (self-contained).
        checkpoint: String,
    },
    /// Coordinator → worker: nothing leasable right now.
    NoWork {
        /// Whether the drain is over (workers should report metrics and
        /// disconnect) rather than momentarily idle (retry).
        settled: bool,
    },
    /// Worker → coordinator: a completed lease.
    Result {
        /// Queue id of the job.
        job: u64,
        /// Slice index the lease named.
        slice: u64,
        /// What the slice concluded.
        outcome: WireOutcome,
    },
    /// Worker → coordinator: still computing a lease; extends its
    /// deadline.
    Heartbeat {
        /// Queue id of the leased job.
        job: u64,
        /// Slice index of the lease.
        slice: u64,
    },
    /// Either direction: a structured refusal.
    Nack {
        /// Stable machine-readable code (`version-skew`,
        /// `stale-result`, `bad-request`, `busy`, ...).
        code: String,
        /// Human-readable detail.
        detail: String,
        /// For transient refusals (`busy`): how long the peer suggests
        /// waiting before retrying, in ms. 0 = no hint (deterministic
        /// refusals always send 0).
        retry_after_ms: u64,
    },
    /// Worker → coordinator: the worker registry's snapshot for fleet
    /// aggregation, sent once when the drain settles.
    Metrics {
        /// `bgr-metrics-snapshot v1` wire text.
        snapshot: String,
    },
    /// Worker → coordinator: clean disconnect.
    Bye,
}

// --- payload text helpers ---------------------------------------------

fn put_line(out: &mut Vec<u8>, key: &str, value: impl fmt::Display) {
    out.extend_from_slice(key.as_bytes());
    out.push(b' ');
    out.extend_from_slice(value.to_string().as_bytes());
    out.push(b'\n');
}

/// `key <bytelen>\n<bytes>\n` — the only place raw multi-line text
/// (checkpoints, trace segments) enters a payload.
fn put_block(out: &mut Vec<u8>, key: &str, text: &str) {
    put_line(out, key, text.len());
    out.extend_from_slice(text.as_bytes());
    out.push(b'\n');
}

/// Sequential reader over a payload with field-context errors.
struct PayloadReader<'a> {
    rest: &'a [u8],
}

impl<'a> PayloadReader<'a> {
    fn new(payload: &'a [u8]) -> Self {
        Self { rest: payload }
    }

    /// Next `key value` line; checks the key.
    fn line(&mut self, key: &str) -> Result<&'a str, ProtoError> {
        let nl = self
            .rest
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| malformed(format!("missing line {key:?}")))?;
        let line = std::str::from_utf8(&self.rest[..nl])
            .map_err(|_| malformed(format!("line {key:?} is not utf-8")))?;
        self.rest = &self.rest[nl + 1..];
        let (k, v) = line
            .split_once(' ')
            .ok_or_else(|| malformed(format!("line {line:?} has no value")))?;
        if k != key {
            return Err(malformed(format!("expected key {key:?}, found {k:?}")));
        }
        Ok(v)
    }

    fn u64(&mut self, key: &str) -> Result<u64, ProtoError> {
        let v = self.line(key)?;
        v.parse()
            .map_err(|_| malformed(format!("{key} is not a u64: {v:?}")))
    }

    fn bool(&mut self, key: &str) -> Result<bool, ProtoError> {
        match self.line(key)? {
            "true" => Ok(true),
            "false" => Ok(false),
            v => Err(malformed(format!("{key} is not a bool: {v:?}"))),
        }
    }

    /// `f64` carried as `to_bits` hex (checkpoint-codec convention).
    fn f64_bits(&mut self, key: &str) -> Result<f64, ProtoError> {
        let v = self.line(key)?;
        let bits = u64::from_str_radix(v, 16)
            .map_err(|_| malformed(format!("{key} is not f64 hex bits: {v:?}")))?;
        Ok(f64::from_bits(bits))
    }

    /// Byte-length-prefixed text block.
    fn block(&mut self, key: &str) -> Result<String, ProtoError> {
        let len: usize = self
            .line(key)?
            .parse()
            .map_err(|_| malformed(format!("{key} block length is not a usize")))?;
        // `<=` rather than `< len + 1`: `len` is attacker-controlled and
        // may be `usize::MAX`, where `len + 1` would overflow.
        if self.rest.len() <= len {
            return Err(malformed(format!(
                "{key} block truncated: need {} bytes, have {}",
                len as u128 + 1,
                self.rest.len()
            )));
        }
        let text = std::str::from_utf8(&self.rest[..len])
            .map_err(|_| malformed(format!("{key} block is not utf-8")))?
            .to_string();
        if self.rest[len] != b'\n' {
            return Err(malformed(format!("{key} block missing terminator")));
        }
        self.rest = &self.rest[len + 1..];
        Ok(text)
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(malformed(format!(
                "{} trailing bytes after message",
                self.rest.len()
            )))
        }
    }
}

fn put_opt_u64(out: &mut Vec<u8>, key: &str, value: Option<u64>) {
    match value {
        Some(v) => put_line(out, key, v),
        None => put_line(out, key, "none"),
    }
}

fn read_opt_u64(r: &mut PayloadReader<'_>, key: &str) -> Result<Option<u64>, ProtoError> {
    match r.line(key)? {
        "none" => Ok(None),
        v => v
            .parse()
            .map(Some)
            .map_err(|_| malformed(format!("{key} is not a u64: {v:?}"))),
    }
}

fn put_verdict(out: &mut Vec<u8>, v: &FinishVerdict) {
    put_line(out, "audit_clean", v.audit_clean);
    put_line(out, "audit_checks", v.audit_checks);
    put_block(out, "audit_line", &v.audit_line);
    match &v.violations_line {
        Some(line) => {
            put_line(out, "violations", "some");
            put_block(out, "violations_line", line);
        }
        None => put_line(out, "violations", "none"),
    }
    put_line(out, "feasible", v.feasible);
    put_line(
        out,
        "worst_margin_ps",
        format!("{:x}", v.worst_margin_ps.to_bits()),
    );
    put_line(out, "area_tracks", v.area_tracks);
    put_line(
        out,
        "total_length_um",
        format!("{:x}", v.total_length_um.to_bits()),
    );
}

fn read_verdict(r: &mut PayloadReader<'_>) -> Result<FinishVerdict, ProtoError> {
    let audit_clean = r.bool("audit_clean")?;
    let audit_checks = r.u64("audit_checks")?;
    let audit_line = r.block("audit_line")?;
    let violations_line = match r.line("violations")? {
        "some" => Some(r.block("violations_line")?),
        "none" => None,
        v => return Err(malformed(format!("violations marker {v:?}"))),
    };
    Ok(FinishVerdict {
        audit_clean,
        audit_checks,
        audit_line,
        violations_line,
        feasible: r.bool("feasible")?,
        worst_margin_ps: r.f64_bits("worst_margin_ps")?,
        area_tracks: r.u64("area_tracks")?,
        total_length_um: r.f64_bits("total_length_um")?,
    })
}

impl Message {
    /// The frame kind discriminant this message travels under.
    pub fn kind(&self) -> u8 {
        match self {
            Self::Hello { .. } => 1,
            Self::Welcome { .. } => 2,
            Self::LeaseReq => 3,
            Self::Lease { .. } => 4,
            Self::NoWork { .. } => 5,
            Self::Result { .. } => 6,
            Self::Heartbeat { .. } => 7,
            Self::Nack { .. } => 8,
            Self::Metrics { .. } => 9,
            Self::Bye => 10,
        }
    }

    /// Serializes the payload text for this message.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Self::Hello {
                version,
                worker,
                token,
            } => {
                put_line(&mut out, "version", version);
                put_block(&mut out, "worker", worker);
                match token {
                    Some(t) => {
                        put_line(&mut out, "token", "some");
                        put_block(&mut out, "token_text", t);
                    }
                    None => put_line(&mut out, "token", "none"),
                }
            }
            Self::Welcome {
                version,
                heartbeat_ms,
            } => {
                put_line(&mut out, "version", version);
                put_line(&mut out, "heartbeat_ms", heartbeat_ms);
            }
            Self::LeaseReq | Self::Bye => {}
            Self::Lease {
                job,
                slice,
                quota,
                deadline_ms,
                checkpoint,
            } => {
                put_line(&mut out, "job", job);
                put_line(&mut out, "slice", slice);
                put_opt_u64(&mut out, "quota", *quota);
                put_opt_u64(&mut out, "deadline_ms", *deadline_ms);
                put_block(&mut out, "checkpoint", checkpoint);
            }
            Self::NoWork { settled } => put_line(&mut out, "settled", settled),
            Self::Result {
                job,
                slice,
                outcome,
            } => {
                put_line(&mut out, "job", job);
                put_line(&mut out, "slice", slice);
                match outcome {
                    WireOutcome::Suspended {
                        checkpoint,
                        stage,
                        events_emitted,
                        selections_done,
                        events_jsonl,
                    } => {
                        put_line(&mut out, "outcome", "suspended");
                        put_line(&mut out, "stage", stage);
                        put_line(&mut out, "events_emitted", events_emitted);
                        put_line(&mut out, "selections_done", selections_done);
                        put_block(&mut out, "checkpoint", checkpoint);
                        put_block(&mut out, "events_jsonl", events_jsonl);
                    }
                    WireOutcome::Finished {
                        events_emitted,
                        selections_done,
                        events_jsonl,
                        verdict,
                    } => {
                        put_line(&mut out, "outcome", "finished");
                        put_line(&mut out, "events_emitted", events_emitted);
                        put_line(&mut out, "selections_done", selections_done);
                        put_block(&mut out, "events_jsonl", events_jsonl);
                        put_verdict(&mut out, verdict);
                    }
                    WireOutcome::Failed { message } => {
                        put_line(&mut out, "outcome", "failed");
                        put_block(&mut out, "message", message);
                    }
                }
            }
            Self::Heartbeat { job, slice } => {
                put_line(&mut out, "job", job);
                put_line(&mut out, "slice", slice);
            }
            Self::Nack {
                code,
                detail,
                retry_after_ms,
            } => {
                put_block(&mut out, "code", code);
                put_block(&mut out, "detail", detail);
                put_line(&mut out, "retry_after_ms", retry_after_ms);
            }
            Self::Metrics { snapshot } => put_block(&mut out, "snapshot", snapshot),
        }
        out
    }

    /// Decodes a frame into a typed message.
    ///
    /// # Errors
    ///
    /// [`ProtoError::UnknownKind`] on an unrecognized discriminant,
    /// [`ProtoError::Malformed`] on any schema violation — including
    /// trailing bytes after a complete message. Never panics.
    pub fn decode(frame: &Frame) -> Result<Self, ProtoError> {
        let mut r = PayloadReader::new(&frame.payload);
        let msg = match frame.kind {
            1 => {
                let version = r
                    .line("version")?
                    .parse()
                    .map_err(|_| malformed("version is not a u16"))?;
                let worker = r.block("worker")?;
                let token = match r.line("token")? {
                    "some" => Some(r.block("token_text")?),
                    "none" => None,
                    v => return Err(malformed(format!("token marker {v:?}"))),
                };
                Self::Hello {
                    version,
                    worker,
                    token,
                }
            }
            2 => Self::Welcome {
                version: r
                    .line("version")?
                    .parse()
                    .map_err(|_| malformed("version is not a u16"))?,
                heartbeat_ms: r.u64("heartbeat_ms")?,
            },
            3 => Self::LeaseReq,
            4 => Self::Lease {
                job: r.u64("job")?,
                slice: r.u64("slice")?,
                quota: read_opt_u64(&mut r, "quota")?,
                deadline_ms: read_opt_u64(&mut r, "deadline_ms")?,
                checkpoint: r.block("checkpoint")?,
            },
            5 => Self::NoWork {
                settled: r.bool("settled")?,
            },
            6 => {
                let job = r.u64("job")?;
                let slice = r.u64("slice")?;
                let outcome = match r.line("outcome")? {
                    "suspended" => WireOutcome::Suspended {
                        stage: r.line("stage")?.to_string(),
                        events_emitted: r.u64("events_emitted")?,
                        selections_done: r.u64("selections_done")?,
                        checkpoint: r.block("checkpoint")?,
                        events_jsonl: r.block("events_jsonl")?,
                    },
                    "finished" => WireOutcome::Finished {
                        events_emitted: r.u64("events_emitted")?,
                        selections_done: r.u64("selections_done")?,
                        events_jsonl: r.block("events_jsonl")?,
                        verdict: read_verdict(&mut r)?,
                    },
                    "failed" => WireOutcome::Failed {
                        message: r.block("message")?,
                    },
                    v => return Err(malformed(format!("unknown outcome {v:?}"))),
                };
                Self::Result {
                    job,
                    slice,
                    outcome,
                }
            }
            7 => Self::Heartbeat {
                job: r.u64("job")?,
                slice: r.u64("slice")?,
            },
            8 => Self::Nack {
                code: r.block("code")?,
                detail: r.block("detail")?,
                retry_after_ms: r.u64("retry_after_ms")?,
            },
            9 => Self::Metrics {
                snapshot: r.block("snapshot")?,
            },
            10 => Self::Bye,
            kind => return Err(ProtoError::UnknownKind { kind }),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Writes `msg` as one frame.
///
/// # Errors
///
/// Propagates [`FrameError`] from the transport.
pub fn send(w: &mut impl std::io::Write, msg: &Message) -> Result<(), ProtoError> {
    crate::frame::write_frame(w, msg.kind(), &msg.encode_payload())?;
    Ok(())
}

/// Reads one frame and decodes it.
///
/// # Errors
///
/// Structured [`ProtoError`] on transport or schema damage.
pub fn recv(r: &mut impl std::io::Read) -> Result<Message, ProtoError> {
    let frame = crate::frame::read_frame(r)?;
    Message::decode(&frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{decode_frame, encode_frame};

    fn round_trip(msg: Message) {
        let bytes = encode_frame(msg.kind(), &msg.encode_payload());
        let (frame, _) = decode_frame(&bytes).unwrap();
        assert_eq!(Message::decode(&frame).unwrap(), msg);
    }

    #[test]
    fn every_message_round_trips() {
        round_trip(Message::Hello {
            version: 1,
            worker: "w0".into(),
            token: None,
        });
        round_trip(Message::Hello {
            version: 2,
            worker: "w1".into(),
            token: Some("hunter2".into()),
        });
        round_trip(Message::Welcome {
            version: 1,
            heartbeat_ms: 1250,
        });
        round_trip(Message::LeaseReq);
        round_trip(Message::Lease {
            job: 3,
            slice: 7,
            quota: Some(16),
            deadline_ms: Some(1500),
            checkpoint: "bgr-checkpoint v1\nfake\n".into(),
        });
        round_trip(Message::Lease {
            job: 0,
            slice: 0,
            quota: None,
            deadline_ms: None,
            checkpoint: String::new(),
        });
        round_trip(Message::Lease {
            job: 1,
            slice: 2,
            quota: Some(4),
            deadline_ms: Some(0), // expired budget: worker abandons
            checkpoint: "bgr-checkpoint v1\nfake\n".into(),
        });
        round_trip(Message::NoWork { settled: true });
        round_trip(Message::Result {
            job: 2,
            slice: 4,
            outcome: WireOutcome::Suspended {
                checkpoint: "cp\nwith\nlines".into(),
                stage: "improve_delay".into(),
                events_emitted: 42,
                selections_done: 17,
                events_jsonl: "{\"type\":\"event\",\"seq\":41}\n".into(),
            },
        });
        round_trip(Message::Result {
            job: 2,
            slice: 5,
            outcome: WireOutcome::Finished {
                events_emitted: 99,
                selections_done: 31,
                events_jsonl: String::new(),
                verdict: FinishVerdict {
                    audit_clean: true,
                    audit_checks: 120,
                    audit_line: "audit clean: 120 checks".into(),
                    violations_line: Some("2 nets violate".into()),
                    feasible: false,
                    worst_margin_ps: -3.25,
                    area_tracks: 44,
                    total_length_um: 1234.5678,
                },
            },
        });
        round_trip(Message::Result {
            job: 1,
            slice: 0,
            outcome: WireOutcome::Failed {
                message: "checkpoint damaged".into(),
            },
        });
        round_trip(Message::Heartbeat { job: 1, slice: 2 });
        round_trip(Message::Nack {
            code: "stale-result".into(),
            detail: "slice 3 already applied".into(),
            retry_after_ms: 0,
        });
        round_trip(Message::Nack {
            code: "busy".into(),
            detail: "connection cap reached".into(),
            retry_after_ms: 250,
        });
        round_trip(Message::Metrics {
            snapshot: "bgr-metrics-snapshot v1\nend 0\n".into(),
        });
        round_trip(Message::Bye);
    }

    #[test]
    fn verdict_floats_survive_bit_identically() {
        for margin in [f64::INFINITY, -0.0, 1e-300, -17.125] {
            let msg = Message::Result {
                job: 0,
                slice: 0,
                outcome: WireOutcome::Finished {
                    events_emitted: 0,
                    selections_done: 0,
                    events_jsonl: String::new(),
                    verdict: FinishVerdict {
                        audit_clean: true,
                        audit_checks: 1,
                        audit_line: "a".into(),
                        violations_line: None,
                        feasible: true,
                        worst_margin_ps: margin,
                        area_tracks: 0,
                        total_length_um: margin,
                    },
                },
            };
            let bytes = encode_frame(msg.kind(), &msg.encode_payload());
            let (frame, _) = decode_frame(&bytes).unwrap();
            let back = Message::decode(&frame).unwrap();
            let Message::Result {
                outcome: WireOutcome::Finished { verdict, .. },
                ..
            } = back
            else {
                panic!("wrong shape");
            };
            assert_eq!(verdict.worst_margin_ps.to_bits(), margin.to_bits());
        }
    }

    #[test]
    fn lying_block_lengths_are_malformed_not_panics() {
        // A well-framed Hello whose block length lies: usize::MAX would
        // overflow a naive `len + 1` availability check, and the other
        // values claim more bytes than the payload carries.
        for len in [
            usize::MAX.to_string(),
            (usize::MAX - 1).to_string(),
            "4096".to_string(),
        ] {
            let payload = format!("version 1\nworker {len}\nw0\n");
            let bytes = encode_frame(1, payload.as_bytes());
            let (frame, _) = decode_frame(&bytes).unwrap();
            assert!(matches!(
                Message::decode(&frame),
                Err(ProtoError::Malformed { .. })
            ));
        }
    }

    #[test]
    fn busy_refusals_are_retryable_and_map_their_hint() {
        let busy = ProtoError::Refused {
            code: "busy".into(),
            detail: "4 of 4 handler slots in use".into(),
            retry_after_ms: 50,
        };
        assert!(busy.is_retryable(), "load shedding invites a retry");
        let auth = ProtoError::Refused {
            code: "auth".into(),
            detail: "token mismatch".into(),
            retry_after_ms: 0,
        };
        assert!(!auth.is_retryable(), "deterministic refusals are fatal");
    }

    #[test]
    fn deadline_abandonment_maps_back_to_the_structured_error() {
        let out = WireOutcome::Failed {
            message: "slice deadline expired (budget 0 ms)".into(),
        }
        .into_outcome()
        .unwrap();
        assert!(matches!(
            out,
            SliceOutcome::Failed {
                error: RouteError::DeadlineExpired { budget_ms: 0 }
            }
        ));
        let out = WireOutcome::Failed {
            message: "checkpoint damaged".into(),
        }
        .into_outcome()
        .unwrap();
        assert!(matches!(
            out,
            SliceOutcome::Failed {
                error: RouteError::Internal {
                    phase: "remote",
                    ..
                }
            }
        ));
    }

    #[test]
    fn retryability_splits_transport_from_schema() {
        // Transport death and in-flight damage: reconnect can clear it.
        for e in [
            ProtoError::Frame(FrameError::Io {
                message: "broken pipe".into(),
            }),
            ProtoError::Frame(FrameError::Truncated { at: "payload" }),
            ProtoError::Frame(FrameError::ChecksumMismatch {
                computed: 1,
                carried: 2,
            }),
            ProtoError::Frame(FrameError::BadMagic { found: [0; 4] }),
            ProtoError::Connect {
                kind: std::io::ErrorKind::ConnectionRefused,
                message: "connect 127.0.0.1:9: refused".into(),
            },
            ProtoError::Connect {
                kind: std::io::ErrorKind::TimedOut,
                message: "connect: timed out".into(),
            },
        ] {
            assert!(e.is_retryable(), "{e}");
        }
        // Deterministic failures: retrying reproduces them.
        for e in [
            ProtoError::Frame(FrameError::VersionSkew { got: 9, want: 2 }),
            ProtoError::Frame(FrameError::Oversize { len: u32::MAX }),
            ProtoError::UnknownKind { kind: 200 },
            ProtoError::Malformed {
                message: "junk".into(),
            },
            ProtoError::Refused {
                code: "auth".into(),
                detail: "token mismatch".into(),
                retry_after_ms: 0,
            },
            ProtoError::Connect {
                kind: std::io::ErrorKind::PermissionDenied,
                message: "connect: eperm".into(),
            },
        ] {
            assert!(!e.is_retryable(), "{e}");
        }
    }

    #[test]
    fn bad_token_marker_is_malformed() {
        let payload = b"version 2\nworker 2\nw0\ntoken maybe\n";
        let bytes = encode_frame(1, payload);
        let (frame, _) = decode_frame(&bytes).unwrap();
        assert!(matches!(
            Message::decode(&frame),
            Err(ProtoError::Malformed { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Message::Heartbeat { job: 1, slice: 2 }.encode_payload();
        payload.extend_from_slice(b"junk\n");
        let bytes = encode_frame(7, &payload);
        let (frame, _) = decode_frame(&bytes).unwrap();
        assert!(matches!(
            Message::decode(&frame),
            Err(ProtoError::Malformed { .. })
        ));
    }
}
