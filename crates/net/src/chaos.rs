//! Deterministic fault-injection TCP proxy.
//!
//! [`ChaosProxy`] sits between workers and a coordinator and injects
//! the faults real links produce — connection resets (at frame
//! boundaries and mid-frame, i.e. partial writes), read/write stalls,
//! and duplicate delivery — on a schedule driven entirely by the
//! workspace's SplitMix64 PRNG. Same seed, same per-connection fault
//! schedule: a chaos run that fails is *replayable*.
//!
//! The proxy is frame-aware but not frame-validating: it parses just
//! enough of the `BGRW` header to find frame boundaries (so injections
//! land at protocol-meaningful points) and forwards bytes verbatim
//! otherwise. Anything it cannot frame is treated as a dead stream and
//! severed — which is itself just another fault the endpoints must
//! survive.
//!
//! Determinism note: the *schedule* is deterministic per (connection
//! index, direction); which schedule a logical worker experiences
//! depends on connection arrival order, which is scheduling noise. That
//! is exactly the point — DESIGN.md §15 proves the drain's observables
//! are invariant under any interleaving, so the harness is free to vary
//! timing while asserting byte-identical outcomes.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bgr_io::{JournalError, JournalSink, JOURNAL_MAGIC};
use bgr_netlist::rng::SplitMix64;

use crate::frame::{HEADER_LEN, MAX_PAYLOAD};

/// Where the proxy forwards to. An address file is re-read on *every*
/// inbound connection, so a coordinator that restarts on a fresh
/// ephemeral port is picked up as soon as it rewrites its `--addr-file`.
#[derive(Debug, Clone)]
pub enum ChaosUpstream {
    /// A fixed `host:port`.
    Addr(String),
    /// A file holding `host:port` (the coordinator's `--addr-file`).
    AddrFile(PathBuf),
}

impl ChaosUpstream {
    fn resolve(&self) -> std::io::Result<String> {
        match self {
            Self::Addr(a) => Ok(a.clone()),
            Self::AddrFile(p) => Ok(std::fs::read_to_string(p)?.trim().to_string()),
        }
    }
}

/// Fault probabilities and magnitudes. All draws happen per forwarded
/// frame, in a fixed order, whether or not the fault fires — so two
/// runs with the same seed see identical schedules even when different
/// faults fire.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// PRNG seed; the whole fault schedule is a pure function of it
    /// (plus connection index and direction).
    pub seed: u64,
    /// Probability a frame triggers a connection reset.
    pub reset_per_frame: f64,
    /// Given a reset, probability it tears mid-frame (a partial write)
    /// rather than at the frame boundary.
    pub mid_frame: f64,
    /// Probability a frame is stalled before forwarding.
    pub stall_per_frame: f64,
    /// How long a stall holds the frame.
    pub stall: Duration,
    /// Probability a worker→coordinator RESULT/HEARTBEAT frame is
    /// delivered twice (one coordinator reply is then swallowed, so the
    /// worker still sees strict request/response).
    pub duplicate_per_frame: f64,
}

impl ChaosOptions {
    /// A quiet proxy (no faults) for the given seed — the baseline
    /// configuration tests start from.
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            reset_per_frame: 0.0,
            mid_frame: 0.0,
            stall_per_frame: 0.0,
            stall: Duration::from_millis(40),
            duplicate_per_frame: 0.0,
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    frames: AtomicU64,
    resets: AtomicU64,
    mid_frame_resets: AtomicU64,
    stalls: AtomicU64,
    duplicates: AtomicU64,
}

/// What the proxy did, read at any time via [`ChaosProxy::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosStats {
    /// Inbound connections accepted.
    pub connections: u64,
    /// Frames forwarded (both directions).
    pub frames: u64,
    /// Connections severed by injection (boundary + mid-frame).
    pub resets: u64,
    /// The subset of resets that tore a frame mid-write.
    pub mid_frame_resets: u64,
    /// Frames held by a stall before forwarding.
    pub stalls: u64,
    /// Worker→coordinator frames delivered twice.
    pub duplicates: u64,
}

/// A running fault-injection proxy. Dropping it stops the accept loop;
/// live pump threads die with their sockets.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: String,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `127.0.0.1:0` and starts proxying to `upstream` with the
    /// given fault schedule.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn start(upstream: ChaosUpstream, opts: ChaosOptions) -> std::io::Result<Self> {
        Self::start_on("127.0.0.1:0", upstream, opts)
    }

    /// [`ChaosProxy::start`] on an explicit listen address.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn start_on(
        listen: &str,
        upstream: ChaosUpstream,
        opts: ChaosOptions,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?.to_string();
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || accept_loop(&listener, &upstream, &opts, &stop, &counters))
        };
        Ok(Self {
            addr,
            stop,
            counters,
            accept_thread: Some(accept_thread),
        })
    }

    /// The `host:port` workers should connect to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Injection counters so far.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            frames: self.counters.frames.load(Ordering::Relaxed),
            resets: self.counters.resets.load(Ordering::Relaxed),
            mid_frame_resets: self.counters.mid_frame_resets.load(Ordering::Relaxed),
            stalls: self.counters.stalls.load(Ordering::Relaxed),
            duplicates: self.counters.duplicates.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting and joins the accept loop. Established
    /// connections keep pumping until they close on their own.
    pub fn shutdown(mut self) -> ChaosStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: &ChaosUpstream,
    opts: &ChaosOptions,
    stop: &AtomicBool,
    counters: &Arc<Counters>,
) {
    let mut conn_index: u64 = 0;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((inbound, _)) => {
                counters.connections.fetch_add(1, Ordering::Relaxed);
                let _ = inbound.set_nodelay(true);
                let up = upstream.resolve().and_then(TcpStream::connect);
                let Ok(outbound) = up else {
                    // No coordinator right now (it may be mid-restart):
                    // the worker sees a reset and retries through its
                    // backoff, which is exactly the contract.
                    let _ = inbound.shutdown(Shutdown::Both);
                    conn_index += 1;
                    continue;
                };
                let _ = outbound.set_nodelay(true);
                spawn_pumps(inbound, outbound, conn_index, opts, counters);
                conn_index += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Swallow-one-reply ledger: each duplicated worker→coordinator frame
/// provokes one extra coordinator reply, which the opposite pump drops
/// to preserve the worker's strict request/response view.
type DropLedger = Arc<AtomicU64>;

fn spawn_pumps(
    inbound: TcpStream,
    outbound: TcpStream,
    conn_index: u64,
    opts: &ChaosOptions,
    counters: &Arc<Counters>,
) {
    let drop_replies: DropLedger = Arc::new(AtomicU64::new(0));
    // Worker → coordinator: the only direction where duplication is
    // injected (RESULT/HEARTBEAT duplicates are provably harmless;
    // duplicating coordinator frames would desync the worker).
    {
        let src = inbound.try_clone();
        let dst = outbound.try_clone();
        let opts = opts.clone();
        let counters = Arc::clone(counters);
        let ledger = Arc::clone(&drop_replies);
        if let (Ok(src), Ok(dst)) = (src, dst) {
            std::thread::spawn(move || {
                pump(
                    src,
                    dst,
                    SplitMix64::new(opts.seed ^ (conn_index * 2).wrapping_add(0x9e37_79b9)),
                    &opts,
                    Direction::ToCoordinator,
                    &ledger,
                    &counters,
                );
            });
        }
    }
    // Coordinator → worker.
    let opts = opts.clone();
    let counters = Arc::clone(counters);
    std::thread::spawn(move || {
        pump(
            outbound,
            inbound,
            SplitMix64::new(opts.seed ^ (conn_index * 2 + 1).wrapping_add(0x9e37_79b9)),
            &opts,
            Direction::ToWorker,
            &drop_replies,
            &counters,
        );
    });
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    ToCoordinator,
    ToWorker,
}

/// Reads exactly one frame's bytes from `src` (header first, then the
/// payload and checksum the header promises). `None` on EOF, a dead
/// stream, or anything that cannot be framed.
fn read_frame_bytes(src: &mut TcpStream) -> Option<Vec<u8>> {
    let mut header = [0u8; HEADER_LEN];
    src.read_exact(&mut header).ok()?;
    let len = u32::from_le_bytes([header[7], header[8], header[9], header[10]]);
    if len > MAX_PAYLOAD {
        return None;
    }
    let mut rest = vec![0u8; len as usize + 8];
    src.read_exact(&mut rest).ok()?;
    let mut frame = header.to_vec();
    frame.append(&mut rest);
    Some(frame)
}

fn sever(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    mut rng: SplitMix64,
    opts: &ChaosOptions,
    dir: Direction,
    drop_replies: &DropLedger,
    counters: &Counters,
) {
    loop {
        let Some(frame) = read_frame_bytes(&mut src) else {
            sever(&src, &dst);
            return;
        };
        counters.frames.fetch_add(1, Ordering::Relaxed);
        // Fixed draw order, every draw taken unconditionally: the PRNG
        // stream stays aligned across runs regardless of which faults
        // fire, keeping the whole schedule a function of the seed.
        let reset = rng.next_bool(opts.reset_per_frame);
        let mid = rng.next_bool(opts.mid_frame);
        let stall = rng.next_bool(opts.stall_per_frame);
        let duplicate = rng.next_bool(opts.duplicate_per_frame);

        if reset {
            counters.resets.fetch_add(1, Ordering::Relaxed);
            if mid && frame.len() > 1 {
                // Partial write: half a frame, then the plug is pulled.
                counters.mid_frame_resets.fetch_add(1, Ordering::Relaxed);
                let _ = dst.write_all(&frame[..frame.len() / 2]);
                let _ = dst.flush();
            }
            sever(&src, &dst);
            return;
        }
        if stall {
            counters.stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(opts.stall);
        }
        if dir == Direction::ToWorker && drop_replies.load(Ordering::SeqCst) > 0 {
            // This reply answers a duplicate the worker never sent:
            // swallow it so the worker keeps strict request/response.
            drop_replies.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        if dst.write_all(&frame).and_then(|()| dst.flush()).is_err() {
            sever(&src, &dst);
            return;
        }
        if duplicate && dir == Direction::ToCoordinator && matches!(frame.get(6), Some(6 | 7)) {
            // Deliver RESULT/HEARTBEAT twice. The coordinator answers
            // both (the duplicate lands stale); the ledger swallows one
            // reply on the way back.
            counters.duplicates.fetch_add(1, Ordering::Relaxed);
            drop_replies.fetch_add(1, Ordering::SeqCst);
            if dst.write_all(&frame).and_then(|()| dst.flush()).is_err() {
                sever(&src, &dst);
                return;
            }
        }
    }
}

/// Deterministic disk-fault schedule for [`FaultyDisk`]. Both knobs
/// default off; an all-`None` schedule is a perfectly healthy disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskFaults {
    /// Record-byte capacity: the append that would cross this many
    /// accepted record bytes is torn mid-write
    /// ([`JournalError::ShortWrite`]), and every later append fails
    /// `ENOSPC`-style without writing — the disk filled up.
    pub fail_after_bytes: Option<u64>,
    /// Fail every k-th append (1-based) with a storage-full error,
    /// writing nothing — an intermittently sick device. `Some(0)` is
    /// treated as off.
    pub fail_every_kth_append: Option<u64>,
}

/// An in-memory [`JournalSink`] that injects [`DiskFaults`] — the
/// journal-side analogue of the TCP proxy above. The backing buffer is
/// shared ([`FaultyDisk::buffer`]), pre-seeded with the journal header,
/// so a test can hand the sink to a coordinator, break it on schedule,
/// and afterwards assert the surviving prefix replays cleanly with
/// `bgr_io::read_journal`.
#[derive(Debug)]
pub struct FaultyDisk {
    buf: Arc<Mutex<Vec<u8>>>,
    faults: DiskFaults,
    /// Record bytes accepted so far (header excluded).
    written: u64,
    /// Appends attempted so far (1-based for the k-th check).
    appends: u64,
}

impl FaultyDisk {
    /// A fresh disk holding only the journal header, failing on the
    /// given schedule.
    pub fn new(faults: DiskFaults) -> Self {
        Self {
            buf: Arc::new(Mutex::new(format!("{JOURNAL_MAGIC}\n").into_bytes())),
            faults,
            written: 0,
            appends: 0,
        }
    }

    /// The shared backing buffer (header + every byte accepted, torn
    /// tails included) for post-drain inspection.
    pub fn buffer(&self) -> Arc<Mutex<Vec<u8>>> {
        Arc::clone(&self.buf)
    }
}

impl JournalSink for FaultyDisk {
    fn append_record(&mut self, record: &[u8]) -> Result<(), JournalError> {
        self.appends += 1;
        if let Some(k) = self.faults.fail_every_kth_append {
            if k > 0 && self.appends.is_multiple_of(k) {
                return Err(JournalError::Io {
                    kind: std::io::ErrorKind::StorageFull,
                    message: format!("injected: append {} refused", self.appends),
                });
            }
        }
        let want = record.len();
        if let Some(cap) = self.faults.fail_after_bytes {
            let room = cap.saturating_sub(self.written);
            if room == 0 {
                return Err(JournalError::Io {
                    kind: std::io::ErrorKind::StorageFull,
                    message: "injected: disk full".to_string(),
                });
            }
            if (room as usize) < want {
                // Torn record: the bytes that fit land, the rest never
                // will — exactly what a real ENOSPC mid-append leaves.
                let wrote = room as usize;
                self.buf
                    .lock()
                    .expect("faulty disk buffer")
                    .extend_from_slice(&record[..wrote]);
                self.written += room;
                return Err(JournalError::ShortWrite { wrote, want });
            }
        }
        self.buf
            .lock()
            .expect("faulty disk buffer")
            .extend_from_slice(record);
        self.written += want as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_frame, read_frame};

    #[test]
    fn quiet_proxy_passes_frames_through_verbatim() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let up_addr = upstream.local_addr().unwrap().to_string();
        let proxy =
            ChaosProxy::start(ChaosUpstream::Addr(up_addr), ChaosOptions::quiet(7)).unwrap();

        let echo = std::thread::spawn(move || {
            let (mut conn, _) = upstream.accept().unwrap();
            let frame = read_frame(&mut conn).unwrap();
            crate::frame::write_frame(&mut conn, frame.kind, &frame.payload).unwrap();
        });

        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        let payload = b"chaos pass-through".to_vec();
        client.write_all(&encode_frame(3, &payload)).unwrap();
        let back = read_frame(&mut client).unwrap();
        assert_eq!(back.kind, 3);
        assert_eq!(back.payload, payload);
        echo.join().unwrap();

        let stats = proxy.shutdown();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.resets + stats.stalls + stats.duplicates, 0);
    }

    #[test]
    fn unreachable_upstream_resets_the_client() {
        // Bind-then-drop: a port with nothing listening.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let proxy = ChaosProxy::start(ChaosUpstream::Addr(dead), ChaosOptions::quiet(7)).unwrap();
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        // The proxy severs; our read observes EOF/reset, never a hang.
        let mut buf = [0u8; 16];
        let n = client.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "severed connection must not deliver bytes");
        proxy.shutdown();
    }

    #[test]
    fn faulty_disk_tears_at_capacity_and_the_prefix_replays() {
        let mut writer = bgr_io::JournalWriter::with_sink(Box::new(FaultyDisk::new(DiskFaults {
            fail_after_bytes: Some(60),
            fail_every_kth_append: None,
        })));
        writer.append("result", b"job 0\nslice 0\n").unwrap();
        let err = writer.append("result", b"job 0\nslice 1\n").unwrap_err();
        assert!(matches!(err, JournalError::ShortWrite { .. }), "{err}");
        let err = writer.append("result", b"job 0\nslice 2\n").unwrap_err();
        assert!(
            matches!(
                err,
                JournalError::Io {
                    kind: std::io::ErrorKind::StorageFull,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn faulty_disk_buffer_holds_a_replayable_prefix_after_the_tear() {
        let disk = FaultyDisk::new(DiskFaults {
            fail_after_bytes: Some(60),
            fail_every_kth_append: None,
        });
        let buf = disk.buffer();
        let mut writer = bgr_io::JournalWriter::with_sink(Box::new(disk));
        writer.append("result", b"job 0\nslice 0\n").unwrap();
        writer.append("result", b"job 0\nslice 1\n").unwrap_err();
        let bytes = buf.lock().unwrap().clone();
        let (entries, tail) = bgr_io::read_journal(&bytes).unwrap();
        assert_eq!(entries.len(), 1, "the record before the tear replays");
        assert_eq!(entries[0].payload, b"job 0\nslice 0\n");
        assert!(
            matches!(tail, bgr_io::JournalTail::Truncated { .. }),
            "{tail:?}"
        );
    }

    #[test]
    fn faulty_disk_fails_every_kth_append_without_writing() {
        let disk = FaultyDisk::new(DiskFaults {
            fail_after_bytes: None,
            fail_every_kth_append: Some(2),
        });
        let buf = disk.buffer();
        let mut writer = bgr_io::JournalWriter::with_sink(Box::new(disk));
        writer.append("result", b"a\n").unwrap();
        let err = writer.append("result", b"b\n").unwrap_err();
        assert!(
            matches!(
                err,
                JournalError::Io {
                    kind: std::io::ErrorKind::StorageFull,
                    ..
                }
            ),
            "{err}"
        );
        writer.append("result", b"c\n").unwrap();
        let bytes = buf.lock().unwrap().clone();
        let (entries, tail) = bgr_io::read_journal(&bytes).unwrap();
        assert_eq!(tail, bgr_io::JournalTail::Clean);
        let payloads: Vec<&[u8]> = entries.iter().map(|e| e.payload.as_slice()).collect();
        assert_eq!(payloads, [b"a\n" as &[u8], b"c\n"]);
    }

    #[test]
    fn fault_schedule_is_a_pure_function_of_the_seed() {
        let opts = ChaosOptions {
            seed: 42,
            reset_per_frame: 0.2,
            mid_frame: 0.5,
            stall_per_frame: 0.3,
            stall: Duration::from_millis(1),
            duplicate_per_frame: 0.25,
        };
        let draw = |seed: u64| {
            let mut rng = SplitMix64::new(seed);
            (0..64)
                .map(|_| {
                    (
                        rng.next_bool(opts.reset_per_frame),
                        rng.next_bool(opts.mid_frame),
                        rng.next_bool(opts.stall_per_frame),
                        rng.next_bool(opts.duplicate_per_frame),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(opts.seed), draw(opts.seed));
        assert_ne!(draw(opts.seed), draw(opts.seed + 1));
    }
}
