//! The pull-based slice worker.
//!
//! [`run_worker`] connects to a coordinator, performs the
//! HELLO/WELCOME handshake (version check, optional auth token), then
//! loops: request a lease, execute it with the *same*
//! [`bgr_serve::run_slice`] the local queue uses, return the result,
//! repeat — until the coordinator reports the drain settled, at which
//! point the worker ships its metrics snapshot and disconnects. The
//! worker holds no routing state between leases: everything it needs is
//! in the checkpoint, everything it learned is in the result.
//!
//! # Fault tolerance
//!
//! Transport faults are survivable by construction (DESIGN.md §15
//! "Failure model"): [`ProtoError::is_retryable`] splits stream death
//! and in-flight damage from deterministic failures, and retryable
//! errors trigger a reconnect with bounded exponential backoff and a
//! fresh handshake. A result whose delivery was in doubt when the
//! stream died is *resent* on the new connection — safe because the
//! coordinator rejects duplicates by slice index. While a slice
//! computes, a scoped heartbeat loop keeps the lease alive on the
//! coordinator's advertised cadence, so a slow-but-alive worker never
//! forfeits its work.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use bgr_metrics::{CounterHandle, HistogramHandle, MetricsRegistry};
use bgr_serve::run_slice;

use crate::frame::PROTO_VERSION;
use crate::proto::{recv, send, Message, ProtoError, WireOutcome};

/// Per-worker operational counters, merged fleet-wide by the
/// coordinator via snapshot shipping.
#[derive(Debug, Clone)]
pub struct WorkerMetrics {
    /// Leases accepted.
    pub leases_total: CounterHandle,
    /// Wall-clock of one leased slice, µs.
    pub slice_latency_us: HistogramHandle,
    /// Leased slices that suspended again.
    pub suspended_total: CounterHandle,
    /// Leased slices that finished their session.
    pub finished_total: CounterHandle,
    /// Leased slices that failed structurally.
    pub failed_total: CounterHandle,
    /// Reconnects after a retryable transport fault.
    pub reconnects_total: CounterHandle,
    /// In-slice heartbeats acknowledged by the coordinator.
    pub heartbeats_total: CounterHandle,
    /// Leases abandoned unrun because their deadline budget had
    /// already expired when granted.
    pub deadline_abandoned_total: CounterHandle,
}

impl WorkerMetrics {
    /// Registers the worker metric family on `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            leases_total: registry.counter(
                "bgr_worker_leases_total",
                "Slice leases accepted by this worker",
                &[],
            ),
            slice_latency_us: registry.histogram(
                "bgr_worker_slice_latency_us",
                "Wall-clock latency of one leased slice in microseconds",
                &[],
            ),
            suspended_total: registry.counter(
                "bgr_worker_slices_suspended_total",
                "Leased slices that suspended at a new checkpoint",
                &[],
            ),
            finished_total: registry.counter(
                "bgr_worker_slices_finished_total",
                "Leased slices that finished their session",
                &[],
            ),
            failed_total: registry.counter(
                "bgr_worker_slices_failed_total",
                "Leased slices that failed structurally",
                &[],
            ),
            reconnects_total: registry.counter(
                "bgr_worker_reconnects_total",
                "Reconnects after a retryable transport fault",
                &[],
            ),
            heartbeats_total: registry.counter(
                "bgr_worker_heartbeats_total",
                "In-slice heartbeats acknowledged by the coordinator",
                &[],
            ),
            deadline_abandoned_total: registry.counter(
                "bgr_worker_deadline_abandoned_total",
                "Leases abandoned unrun because their deadline budget expired",
                &[],
            ),
        }
    }
}

/// How a worker runs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Self-chosen name, sent in HELLO (diagnostics only).
    pub name: String,
    /// Shared-secret auth token, sent in HELLO when the fleet runs
    /// with one.
    pub token: Option<String>,
    /// Crash injection for tests: accept the k-th lease (1-based) and
    /// drop the connection without replying, leaving the lease to
    /// expire and be reassigned. The worker exits.
    pub die_on_lease: Option<u64>,
    /// Crash injection for tests: after *submitting* the k-th result
    /// (1-based), sever the connection before reading the reply. The
    /// worker's own retry layer then reconnects, re-handshakes and
    /// resends — exercising the full recovery path in real binaries.
    /// Fires once.
    pub die_after_result: Option<u64>,
    /// Initial sleep between lease polls while the coordinator has no
    /// work; doubles per consecutive idle poll up to [`Self::poll_cap`]
    /// and resets when work is granted.
    pub poll: Duration,
    /// Ceiling of the idle-poll backoff.
    pub poll_cap: Duration,
    /// Heartbeat cadence override while a slice computes. `None` uses
    /// the cadence the coordinator advertises in WELCOME.
    pub heartbeat: Option<Duration>,
    /// Test support: sleep this long inside every slice (before
    /// [`run_slice`]) to simulate slow work. Wall clock only — never a
    /// determinism input.
    pub slice_delay: Option<Duration>,
    /// Reconnect attempts after a retryable fault before giving up.
    /// The counter resets whenever a connection makes progress (a
    /// lease is granted or the drain settles cleanly).
    pub retry_max: u32,
    /// First reconnect backoff delay; doubles per consecutive failed
    /// attempt.
    pub retry_base: Duration,
    /// Ceiling of the reconnect backoff.
    pub retry_cap: Duration,
}

impl WorkerOptions {
    /// Defaults: the given name, no token, no crash injection, 5 ms
    /// idle poll backing off to 160 ms, coordinator-advertised
    /// heartbeat cadence, 10 reconnect attempts from 15 ms up to 2 s.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            token: None,
            die_on_lease: None,
            die_after_result: None,
            poll: Duration::from_millis(5),
            poll_cap: Duration::from_millis(160),
            heartbeat: None,
            slice_delay: None,
            retry_max: 10,
            retry_base: Duration::from_millis(15),
            retry_cap: Duration::from_secs(2),
        }
    }
}

/// Doubles `base` per step, saturating at `cap`. The schedule is a pure
/// function of the step index — deterministic, no jitter (replayable
/// chaos runs need identical schedules).
fn backoff_delay(base: Duration, cap: Duration, step: u32) -> Duration {
    let factor = 1u32 << step.min(20);
    base.saturating_mul(factor).min(cap)
}

/// What a worker did over one drain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// Leases accepted.
    pub leases: u64,
    /// Slices executed to a result.
    pub slices: u64,
    /// Whether crash injection terminated the worker.
    pub died: bool,
    /// Reconnects performed after retryable transport faults
    /// (including those provoked by `die_after_result`).
    pub reconnects: u64,
}

/// One drain-side conversation's working state, shared across
/// reconnects of the same logical worker.
struct DrainState {
    report: WorkerReport,
    /// A result whose delivery is in doubt: set before the Result frame
    /// is sent, cleared once *any* reply arrives (strict
    /// request/response pairs them), resent first on a fresh
    /// connection. Duplicates are rejected stale by the coordinator.
    pending: Option<(u64, u64, WireOutcome)>,
    /// Results submitted (send completed) — monotonic across
    /// reconnects, so `die_after_result`'s equality check fires once.
    submitted: u64,
}

/// Connects to the coordinator at `addr` and drains leases until the
/// coordinator settles (or crash injection fires). The worker's
/// metrics land in `registry` and are shipped to the coordinator as a
/// snapshot just before the clean disconnect. Retryable transport
/// faults (see [`ProtoError::is_retryable`]) are absorbed by
/// reconnecting with bounded exponential backoff.
///
/// # Errors
///
/// Structured [`ProtoError`]: fatal errors (version skew, auth or
/// other `Nack` refusals, schema violations) immediately, retryable
/// errors once `retry_max` consecutive reconnect attempts all failed.
/// Never hangs: every exit is a report or a classified error.
pub fn run_worker(
    addr: &str,
    opts: &WorkerOptions,
    registry: &MetricsRegistry,
) -> Result<WorkerReport, ProtoError> {
    let metrics = WorkerMetrics::register(registry);
    let mut state = DrainState {
        report: WorkerReport {
            leases: 0,
            slices: 0,
            died: false,
            reconnects: 0,
        },
        pending: None,
        submitted: 0,
    };
    let mut attempts: u32 = 0;
    loop {
        let progress_before = (state.report.leases, state.report.slices);
        match drain_connection(addr, opts, registry, &metrics, &mut state) {
            Ok(()) => return Ok(state.report),
            Err(e) if !e.is_retryable() => return Err(e),
            Err(e) => {
                // Progress on the dead connection proves the fault is
                // transient, not systemic: restart the budget.
                if (state.report.leases, state.report.slices) != progress_before {
                    attempts = 0;
                }
                if attempts >= opts.retry_max {
                    return Err(e);
                }
                // Honor the coordinator's retry hint: a busy-shed
                // connection sleeps at least `retry_after_ms` before
                // re-dialing, the deterministic ladder applying on top.
                let mut delay = backoff_delay(opts.retry_base, opts.retry_cap, attempts);
                if let ProtoError::Refused { retry_after_ms, .. } = &e {
                    delay = delay.max(Duration::from_millis(*retry_after_ms));
                }
                std::thread::sleep(delay);
                attempts += 1;
                state.report.reconnects += 1;
                metrics.reconnects_total.inc();
            }
        }
    }
}

/// Runs one connection's conversation to completion. `Ok(())` means the
/// worker is done (drain settled, or crash injection exited it); an
/// `Err` is classified by the caller into reconnect vs give-up.
fn drain_connection(
    addr: &str,
    opts: &WorkerOptions,
    registry: &MetricsRegistry,
    metrics: &WorkerMetrics,
    state: &mut DrainState,
) -> Result<(), ProtoError> {
    let mut stream = TcpStream::connect(addr).map_err(|e| ProtoError::Connect {
        kind: e.kind(),
        message: format!("connect {addr}: {e}"),
    })?;
    let _ = stream.set_nodelay(true);
    send(
        &mut stream,
        &Message::Hello {
            version: PROTO_VERSION,
            worker: opts.name.clone(),
            token: opts.token.clone(),
        },
    )?;
    let cadence = match recv(&mut stream)? {
        Message::Welcome { heartbeat_ms, .. } => {
            opts.heartbeat
                .unwrap_or(Duration::from_millis(if heartbeat_ms == 0 {
                    1000
                } else {
                    heartbeat_ms
                }))
        }
        Message::Nack {
            code,
            detail,
            retry_after_ms,
        } => {
            return Err(ProtoError::Refused {
                code,
                detail,
                retry_after_ms,
            })
        }
        other => {
            return Err(ProtoError::Malformed {
                message: format!("expected WELCOME, got kind {}", other.kind()),
            })
        }
    };
    let mut idle: u32 = 0;
    loop {
        // One request per iteration: resend the in-doubt result if any,
        // otherwise ask for work.
        let was_result = state.pending.is_some();
        let req = match &state.pending {
            Some((job, slice, outcome)) => Message::Result {
                job: *job,
                slice: *slice,
                outcome: outcome.clone(),
            },
            None => Message::LeaseReq,
        };
        send(&mut stream, &req)?;
        if was_result {
            state.submitted += 1;
            if opts.die_after_result == Some(state.submitted) {
                // Crash injection: the result is on the wire, the reply
                // is not ours to see. Sever and let the retry layer
                // reconnect and resend (the duplicate lands stale).
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return Err(ProtoError::Connect {
                    kind: std::io::ErrorKind::ConnectionReset,
                    message: format!(
                        "crash injection: connection severed after result {}",
                        state.submitted
                    ),
                });
            }
        }
        let reply = recv(&mut stream)?;
        // A reply pairs with our request: the in-doubt result (if any)
        // has definitively been received (and applied or rejected).
        state.pending = None;
        match reply {
            Message::Lease {
                job,
                slice,
                quota,
                deadline_ms,
                checkpoint,
            } => {
                idle = 0;
                state.report.leases += 1;
                metrics.leases_total.inc();
                if opts.die_on_lease == Some(state.report.leases) {
                    // Crash injection: vanish mid-slice. The dropped
                    // connection leaves the lease to expire; the
                    // coordinator reassigns the identical spec.
                    drop(stream);
                    state.report.died = true;
                    return Ok(());
                }
                if deadline_ms == Some(0) {
                    // The slice's budget was already spent when the
                    // lease was frozen: abandon it unrun. The canonical
                    // message maps back to `RouteError::DeadlineExpired`
                    // on the coordinator, same as a local expiry.
                    metrics.deadline_abandoned_total.inc();
                    metrics.failed_total.inc();
                    state.pending = Some((
                        job,
                        slice,
                        WireOutcome::Failed {
                            message: "slice deadline expired (budget 0 ms)".to_string(),
                        },
                    ));
                    continue;
                }
                let start = Instant::now();
                let (out, hb_err) = run_slice_heartbeating(
                    &mut stream,
                    job,
                    slice,
                    &checkpoint,
                    quota,
                    cadence,
                    opts,
                    metrics,
                );
                metrics
                    .slice_latency_us
                    .observe(start.elapsed().as_micros() as u64);
                state.report.slices += 1;
                let wire = WireOutcome::from_outcome(&out);
                match &wire {
                    WireOutcome::Suspended { .. } => metrics.suspended_total.inc(),
                    WireOutcome::Finished { .. } => metrics.finished_total.inc(),
                    WireOutcome::Failed { .. } => metrics.failed_total.inc(),
                }
                // The computed result must survive the connection: park
                // it as in-doubt *before* anything can fail, so a dead
                // stream (including one detected by the heartbeat loop)
                // resends it after reconnecting instead of wasting the
                // slice.
                state.pending = Some((job, slice, wire));
                if let Some(e) = hb_err {
                    return Err(e);
                }
            }
            Message::NoWork { settled: false } => {
                std::thread::sleep(backoff_delay(opts.poll, opts.poll_cap, idle));
                idle = idle.saturating_add(1);
            }
            Message::NoWork { settled: true } => {
                send(
                    &mut stream,
                    &Message::Metrics {
                        snapshot: registry.snapshot().to_text(),
                    },
                )?;
                match recv(&mut stream)? {
                    Message::Bye => {}
                    other => {
                        return Err(ProtoError::Malformed {
                            message: format!("expected BYE, got kind {}", other.kind()),
                        })
                    }
                }
                send(&mut stream, &Message::Bye)?;
                return Ok(());
            }
            Message::Nack {
                code,
                detail,
                retry_after_ms,
            } => {
                return Err(ProtoError::Refused {
                    code,
                    detail,
                    retry_after_ms,
                })
            }
            other => {
                return Err(ProtoError::Malformed {
                    message: format!("unexpected kind {}", other.kind()),
                })
            }
        }
    }
}

/// Executes one leased slice on a scoped thread while this thread
/// heartbeats the lease on `cadence`. Returns the outcome plus the
/// first heartbeat error, if any — the slice always runs to completion
/// (the work is never wasted; a dead stream means the caller resends
/// the parked result after reconnecting).
#[allow(clippy::too_many_arguments)]
fn run_slice_heartbeating(
    stream: &mut TcpStream,
    job: u64,
    slice: u64,
    checkpoint: &str,
    quota: Option<u64>,
    cadence: Duration,
    opts: &WorkerOptions,
    metrics: &WorkerMetrics,
) -> (bgr_serve::SliceOutcome, Option<ProtoError>) {
    let done = AtomicBool::new(false);
    let mut hb_err: Option<ProtoError> = None;
    let out = std::thread::scope(|s| {
        let handle = s.spawn(|| {
            if let Some(d) = opts.slice_delay {
                std::thread::sleep(d);
            }
            let out = run_slice(checkpoint, quota);
            done.store(true, Ordering::Release);
            out
        });
        let mut last = Instant::now();
        while !done.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
            if hb_err.is_some() || last.elapsed() < cadence {
                continue;
            }
            let echoed = send(&mut *stream, &Message::Heartbeat { job, slice })
                .and_then(|()| recv(&mut *stream));
            match echoed {
                Ok(Message::Heartbeat { .. }) => metrics.heartbeats_total.inc(),
                Ok(other) => {
                    hb_err = Some(ProtoError::Malformed {
                        message: format!("expected HEARTBEAT echo, got kind {}", other.kind()),
                    });
                }
                Err(e) => hb_err = Some(e),
            }
            last = Instant::now();
        }
        match handle.join() {
            Ok(out) => out,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    });
    (out, hb_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_saturates() {
        let base = Duration::from_millis(15);
        let cap = Duration::from_secs(2);
        assert_eq!(backoff_delay(base, cap, 0), Duration::from_millis(15));
        assert_eq!(backoff_delay(base, cap, 1), Duration::from_millis(30));
        assert_eq!(backoff_delay(base, cap, 3), Duration::from_millis(120));
        assert_eq!(backoff_delay(base, cap, 8), cap);
        // Far past the cap: no overflow, still the cap.
        assert_eq!(backoff_delay(base, cap, u32::MAX), cap);
    }

    #[test]
    fn exhausted_retries_surface_the_classified_error() {
        // Nothing listens on a fresh ephemeral port we bind then drop.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let mut opts = WorkerOptions::named("orphan");
        opts.retry_max = 2;
        opts.retry_base = Duration::from_millis(1);
        opts.retry_cap = Duration::from_millis(2);
        let registry = MetricsRegistry::new();
        let err = run_worker(&addr, &opts, &registry).unwrap_err();
        assert!(err.is_retryable(), "exhausted error keeps its class: {err}");
        assert!(matches!(err, ProtoError::Connect { .. }), "{err:?}");
    }
}
