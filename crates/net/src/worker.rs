//! The pull-based slice worker.
//!
//! [`run_worker`] connects to a coordinator, performs the
//! HELLO/WELCOME version handshake, then loops: request a lease,
//! execute it with the *same* [`bgr_serve::run_slice`] the local queue
//! uses, return the result, repeat — until the coordinator reports the
//! drain settled, at which point the worker ships its metrics snapshot
//! and disconnects. The worker holds no routing state between leases:
//! everything it needs is in the checkpoint, everything it learned is
//! in the result.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use bgr_metrics::{CounterHandle, HistogramHandle, MetricsRegistry};
use bgr_serve::run_slice;

use crate::frame::PROTO_VERSION;
use crate::proto::{recv, send, Message, ProtoError, WireOutcome};

/// Per-worker operational counters, merged fleet-wide by the
/// coordinator via snapshot shipping.
#[derive(Debug, Clone)]
pub struct WorkerMetrics {
    /// Leases accepted.
    pub leases_total: CounterHandle,
    /// Wall-clock of one leased slice, µs.
    pub slice_latency_us: HistogramHandle,
    /// Leased slices that suspended again.
    pub suspended_total: CounterHandle,
    /// Leased slices that finished their session.
    pub finished_total: CounterHandle,
    /// Leased slices that failed structurally.
    pub failed_total: CounterHandle,
}

impl WorkerMetrics {
    /// Registers the worker metric family on `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            leases_total: registry.counter(
                "bgr_worker_leases_total",
                "Slice leases accepted by this worker",
                &[],
            ),
            slice_latency_us: registry.histogram(
                "bgr_worker_slice_latency_us",
                "Wall-clock latency of one leased slice in microseconds",
                &[],
            ),
            suspended_total: registry.counter(
                "bgr_worker_slices_suspended_total",
                "Leased slices that suspended at a new checkpoint",
                &[],
            ),
            finished_total: registry.counter(
                "bgr_worker_slices_finished_total",
                "Leased slices that finished their session",
                &[],
            ),
            failed_total: registry.counter(
                "bgr_worker_slices_failed_total",
                "Leased slices that failed structurally",
                &[],
            ),
        }
    }
}

/// How a worker runs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Self-chosen name, sent in HELLO (diagnostics only).
    pub name: String,
    /// Crash injection for tests: accept the k-th lease (1-based) and
    /// drop the connection without replying, leaving the lease to
    /// expire and be reassigned.
    pub die_on_lease: Option<u64>,
    /// Sleep between lease polls while the coordinator has no work.
    pub poll: Duration,
}

impl WorkerOptions {
    /// Defaults: the given name, no crash injection, 5 ms poll.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            die_on_lease: None,
            poll: Duration::from_millis(5),
        }
    }
}

/// What a worker did over one drain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// Leases accepted.
    pub leases: u64,
    /// Slices executed to a result.
    pub slices: u64,
    /// Whether crash injection terminated the worker.
    pub died: bool,
}

/// Connects to the coordinator at `addr` and drains leases until the
/// coordinator settles (or crash injection fires). The worker's
/// metrics land in `registry` and are shipped to the coordinator as a
/// snapshot just before the clean disconnect.
///
/// # Errors
///
/// Structured [`ProtoError`] on connect failure, version skew
/// (surfaced via the coordinator's `Nack`), or any protocol violation.
pub fn run_worker(
    addr: &str,
    opts: &WorkerOptions,
    registry: &MetricsRegistry,
) -> Result<WorkerReport, ProtoError> {
    let metrics = WorkerMetrics::register(registry);
    let mut stream = TcpStream::connect(addr).map_err(|e| {
        ProtoError::Frame(crate::frame::FrameError::Io {
            message: format!("connect {addr}: {e}"),
        })
    })?;
    let _ = stream.set_nodelay(true);
    send(
        &mut stream,
        &Message::Hello {
            version: PROTO_VERSION,
            worker: opts.name.clone(),
        },
    )?;
    match recv(&mut stream)? {
        Message::Welcome { .. } => {}
        Message::Nack { code, detail } => {
            return Err(ProtoError::Malformed {
                message: format!("coordinator refused handshake: {code}: {detail}"),
            })
        }
        other => {
            return Err(ProtoError::Malformed {
                message: format!("expected WELCOME, got kind {}", other.kind()),
            })
        }
    }
    let mut report = WorkerReport {
        leases: 0,
        slices: 0,
        died: false,
    };
    send(&mut stream, &Message::LeaseReq)?;
    loop {
        match recv(&mut stream)? {
            Message::Lease {
                job,
                slice,
                quota,
                checkpoint,
            } => {
                report.leases += 1;
                metrics.leases_total.inc();
                if opts.die_on_lease == Some(report.leases) {
                    // Crash injection: vanish mid-slice. The dropped
                    // connection leaves the lease to expire; the
                    // coordinator reassigns the identical spec.
                    drop(stream);
                    report.died = true;
                    return Ok(report);
                }
                // Keep the lease alive across the slice: one heartbeat
                // up front resets the deadline granted at lease time.
                send(&mut stream, &Message::Heartbeat { job, slice })?;
                match recv(&mut stream)? {
                    Message::Heartbeat { .. } => {}
                    other => {
                        return Err(ProtoError::Malformed {
                            message: format!("expected HEARTBEAT echo, got kind {}", other.kind()),
                        })
                    }
                }
                let start = Instant::now();
                let out = run_slice(&checkpoint, quota);
                metrics
                    .slice_latency_us
                    .observe(start.elapsed().as_micros() as u64);
                report.slices += 1;
                let wire = WireOutcome::from_outcome(&out);
                match &wire {
                    WireOutcome::Suspended { .. } => metrics.suspended_total.inc(),
                    WireOutcome::Finished { .. } => metrics.finished_total.inc(),
                    WireOutcome::Failed { .. } => metrics.failed_total.inc(),
                }
                send(
                    &mut stream,
                    &Message::Result {
                        job,
                        slice,
                        outcome: wire,
                    },
                )?;
            }
            Message::NoWork { settled: false } => {
                std::thread::sleep(opts.poll);
                send(&mut stream, &Message::LeaseReq)?;
            }
            Message::NoWork { settled: true } => {
                send(
                    &mut stream,
                    &Message::Metrics {
                        snapshot: registry.snapshot().to_text(),
                    },
                )?;
                match recv(&mut stream)? {
                    Message::Bye => {}
                    other => {
                        return Err(ProtoError::Malformed {
                            message: format!("expected BYE, got kind {}", other.kind()),
                        })
                    }
                }
                send(&mut stream, &Message::Bye)?;
                return Ok(report);
            }
            Message::Nack { code, detail } => {
                return Err(ProtoError::Malformed {
                    message: format!("coordinator nack: {code}: {detail}"),
                })
            }
            other => {
                return Err(ProtoError::Malformed {
                    message: format!("unexpected kind {}", other.kind()),
                })
            }
        }
    }
}
