//! Std-only operational metrics for the bgr router stack.
//!
//! The registry is built for the serve layer's write pattern: metrics are
//! registered once at startup (mutex-guarded, cold) and updated from many
//! worker threads through cloneable handles backed by shared atomics
//! (lock-free, hot). Rendering follows the Prometheus text exposition
//! format 0.0.4 and is deterministic: families appear in registration
//! order, samples in label-registration order, and histogram bucket bounds
//! are a fixed power-of-two ladder.
//!
//! Wall-clock time only ever flows *into* the registry (observed
//! latencies); nothing here is read back by the routing engine, so the
//! byte-identical deterministic-trace guarantee (DESIGN.md §9/§10) is
//! untouched. See DESIGN.md §14.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Upper bounds (inclusive, `le`) of the finite histogram buckets: the
/// power-of-two ladder 1, 2, 4, …, 2^19. With microsecond observations
/// this spans 1 µs – ~0.5 s before the `+Inf` overflow bucket.
pub const HIST_BOUNDS: [u64; 20] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072,
    262144, 524288,
];

/// Monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, by: u64) {
        self.0.fetch_add(by, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Settable signed gauge. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct GaugeHandle(Arc<AtomicI64>);

impl GaugeHandle {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, by: i64) {
        self.0.fetch_add(by, Ordering::Relaxed);
    }

    pub fn sub(&self, by: i64) {
        self.0.fetch_sub(by, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Per-bucket (non-cumulative) counts; index `HIST_BOUNDS.len()` is the
    /// `+Inf` overflow bucket. Rendered cumulatively per the exposition
    /// format.
    buckets: [AtomicU64; HIST_BOUNDS.len() + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// Power-of-two bucketed histogram. Cloning shares the underlying cells.
#[derive(Clone, Debug)]
pub struct HistogramHandle(Arc<HistogramCore>);

impl HistogramHandle {
    pub fn observe(&self, v: u64) {
        let idx = HIST_BOUNDS
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(HIST_BOUNDS.len());
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
enum Cell {
    Counter(CounterHandle),
    Gauge(GaugeHandle),
    Histogram(HistogramHandle),
}

#[derive(Debug)]
struct Sample {
    labels: Vec<(String, String)>,
    cell: Cell,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    samples: Vec<Sample>,
}

#[derive(Debug, Default)]
struct Inner {
    families: Vec<Family>,
}

/// Registry of metric families. Cheap to clone (shared `Arc`); the mutex
/// guards registration and rendering only — every update path goes through
/// lock-free handles.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or attach to) a counter sample. Re-registering the same
    /// `(name, labels)` returns a handle to the existing cell, so restarted
    /// components keep accumulating rather than resetting.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> CounterHandle {
        match self.cell(name, help, Kind::Counter, labels, || {
            Cell::Counter(CounterHandle::default())
        }) {
            Cell::Counter(h) => h,
            _ => unreachable!("kind checked in cell()"),
        }
    }

    /// Register (or attach to) a gauge sample.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> GaugeHandle {
        match self.cell(name, help, Kind::Gauge, labels, || {
            Cell::Gauge(GaugeHandle::default())
        }) {
            Cell::Gauge(h) => h,
            _ => unreachable!("kind checked in cell()"),
        }
    }

    /// Register (or attach to) a histogram sample with the fixed
    /// power-of-two [`HIST_BOUNDS`] ladder.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        match self.cell(name, help, Kind::Histogram, labels, || {
            Cell::Histogram(HistogramHandle(Arc::new(HistogramCore::new())))
        }) {
            Cell::Histogram(h) => h,
            _ => unreachable!("kind checked in cell()"),
        }
    }

    fn cell(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Cell,
    ) -> Cell {
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
                && !name.is_empty()
                && !name.starts_with(|c: char| c.is_ascii_digit()),
            "invalid metric name {name:?}"
        );
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let family = match inner.families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(
                    f.kind, kind,
                    "metric {name:?} re-registered with a different kind"
                );
                f
            }
            None => {
                inner.families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    samples: Vec::new(),
                });
                inner.families.last_mut().expect("just pushed")
            }
        };
        if let Some(s) = family.samples.iter().find(|s| {
            s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|(have, want)| have.0 == want.0 && have.1 == want.1)
        }) {
            return s.cell.clone();
        }
        let cell = make();
        family.samples.push(Sample {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            cell: cell.clone(),
        });
        cell
    }

    /// Render the whole registry in the Prometheus text exposition format
    /// (version 0.0.4). Deterministic: registration order throughout.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for family in &inner.families {
            if !family.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
            }
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.label());
            for sample in &family.samples {
                match &sample.cell {
                    Cell::Counter(h) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            label_block(&sample.labels, None),
                            h.get()
                        );
                    }
                    Cell::Gauge(h) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            label_block(&sample.labels, None),
                            h.get()
                        );
                    }
                    Cell::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, bound) in HIST_BOUNDS.iter().enumerate() {
                            cumulative += h.0.buckets[i].load(Ordering::Relaxed);
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {}",
                                family.name,
                                label_block(&sample.labels, Some(&bound.to_string())),
                                cumulative
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            family.name,
                            label_block(&sample.labels, Some("+Inf")),
                            h.count()
                        );
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            family.name,
                            label_block(&sample.labels, None),
                            h.sum()
                        );
                        let _ = writeln!(
                            out,
                            "{}_count{} {}",
                            family.name,
                            label_block(&sample.labels, None),
                            h.count()
                        );
                    }
                }
            }
        }
        out
    }

    /// Write the exposition text to `path` (creating parent directories),
    /// atomically via a sibling temp file so scrapers never see a torn
    /// snapshot.
    pub fn write_to_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.render_prometheus())?;
        std::fs::rename(&tmp, path)
    }

    /// Spawn a minimal HTTP/1.1 server answering `GET /metrics` (and `/`)
    /// with the current exposition text. Binds eagerly so the caller gets
    /// the resolved address (pass port 0 to let the OS pick).
    pub fn serve_http<A: ToSocketAddrs>(&self, addr: A) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let registry = self.clone();
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("bgr-metrics-http".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Serve inline: scrapes are rare and the body is small,
                    // so a second thread per connection buys nothing.
                    let _ = serve_one(&registry, stream);
                }
            })?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }
}

/// Point-in-time value of one metric sample inside a
/// [`MetricsSnapshot`]. The variant doubles as the sample's kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram reading: per-bucket (non-cumulative) counts on the
    /// fixed [`HIST_BOUNDS`] ladder plus the `+Inf` overflow bucket,
    /// and the running sum / count.
    Histogram {
        /// Non-cumulative bucket counts; last entry is `+Inf`.
        buckets: Vec<u64>,
        /// Sum of observed values.
        sum: u64,
        /// Number of observations.
        count: u64,
    },
}

/// One sample (label set + value) of a snapshot family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapSample {
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// The reading.
    pub value: SnapValue,
}

/// One metric family of a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapFamily {
    /// Metric name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Samples in registration order.
    pub samples: Vec<SnapSample>,
}

/// Structured error of [`MetricsSnapshot::parse`]. Damaged snapshot
/// text (truncation, corruption, version skew) always degrades to this
/// — never a panic — mirroring the checkpoint codec's contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotParseError {
    /// 1-based line of the offending input (0 = whole document).
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for SnapshotParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "metrics snapshot line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SnapshotParseError {}

const SNAPSHOT_HEADER: &str = "bgr-metrics-snapshot v1";

/// Escapes a token for the snapshot wire text: backslash, newline and
/// space become `\\`, `\n`, `\_` so every token is whitespace-free.
fn escape_token(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            ' ' => out.push_str("\\_"),
            c => out.push(c),
        }
    }
    if out.is_empty() {
        out.push_str("\\0");
    }
    out
}

fn unescape_token(s: &str) -> Option<String> {
    if s == "\\0" {
        return Some(String::new());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('_') => out.push(' '),
            _ => return None,
        }
    }
    Some(out)
}

/// A point-in-time, serializable copy of a registry's families and
/// values — the unit a `bgr-net` worker ships upstream so the
/// coordinator can fold per-worker registries into one fleet view
/// ([`MetricsRegistry::merge`] / [`MetricsRegistry::render_merged`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Families in registration order.
    pub families: Vec<SnapFamily>,
}

impl MetricsSnapshot {
    /// Serializes the snapshot to the versioned line-oriented wire
    /// text. Round-trips exactly through [`MetricsSnapshot::parse`].
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{SNAPSHOT_HEADER}");
        for family in &self.families {
            let _ = writeln!(
                out,
                "family {} {}",
                escape_token(&family.name),
                escape_token(&family.help)
            );
            for sample in &family.samples {
                let mut line = format!("sample {}", sample.labels.len());
                for (k, v) in &sample.labels {
                    let _ = write!(line, " {} {}", escape_token(k), escape_token(v));
                }
                match &sample.value {
                    SnapValue::Counter(v) => {
                        let _ = write!(line, " counter {v}");
                    }
                    SnapValue::Gauge(v) => {
                        let _ = write!(line, " gauge {v}");
                    }
                    SnapValue::Histogram {
                        buckets,
                        sum,
                        count,
                    } => {
                        let _ = write!(line, " histogram {sum} {count}");
                        for b in buckets {
                            let _ = write!(line, " {b}");
                        }
                    }
                }
                let _ = writeln!(out, "{line}");
            }
        }
        let _ = writeln!(out, "end {}", self.families.len());
        out
    }

    /// Parses wire text produced by [`MetricsSnapshot::to_text`].
    ///
    /// # Errors
    ///
    /// [`SnapshotParseError`] on version skew, truncation (the trailing
    /// `end <count>` line is mandatory), or any malformed line.
    pub fn parse(text: &str) -> Result<Self, SnapshotParseError> {
        let err = |line: usize, message: String| SnapshotParseError { line, message };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, SNAPSHOT_HEADER)) => {}
            Some((_, other)) => {
                return Err(err(
                    1,
                    format!("bad header {other:?} (want {SNAPSHOT_HEADER:?})"),
                ))
            }
            None => return Err(err(0, "empty snapshot".into())),
        }
        let mut snap = MetricsSnapshot::default();
        let mut ended = false;
        for (i, line) in lines {
            let lineno = i + 1;
            if ended {
                return Err(err(lineno, "content after end".into()));
            }
            let mut tok = line.split(' ');
            match tok.next() {
                Some("family") => {
                    let name = tok
                        .next()
                        .and_then(unescape_token)
                        .ok_or_else(|| err(lineno, "family lacks a name".into()))?;
                    let help = tok
                        .next()
                        .and_then(unescape_token)
                        .ok_or_else(|| err(lineno, "family lacks help text".into()))?;
                    if tok.next().is_some() {
                        return Err(err(lineno, "trailing tokens after family".into()));
                    }
                    snap.families.push(SnapFamily {
                        name,
                        help,
                        samples: Vec::new(),
                    });
                }
                Some("sample") => {
                    let family = snap
                        .families
                        .last_mut()
                        .ok_or_else(|| err(lineno, "sample before any family".into()))?;
                    let nlabels: usize = tok
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(lineno, "sample lacks a label count".into()))?;
                    if nlabels > 64 {
                        return Err(err(lineno, format!("implausible label count {nlabels}")));
                    }
                    let mut labels = Vec::with_capacity(nlabels);
                    for _ in 0..nlabels {
                        let k = tok
                            .next()
                            .and_then(unescape_token)
                            .ok_or_else(|| err(lineno, "truncated label key".into()))?;
                        let v = tok
                            .next()
                            .and_then(unescape_token)
                            .ok_or_else(|| err(lineno, "truncated label value".into()))?;
                        labels.push((k, v));
                    }
                    let kind = tok
                        .next()
                        .ok_or_else(|| err(lineno, "sample lacks a kind".into()))?;
                    let value = match kind {
                        "counter" => SnapValue::Counter(
                            tok.next()
                                .and_then(|t| t.parse().ok())
                                .ok_or_else(|| err(lineno, "bad counter value".into()))?,
                        ),
                        "gauge" => SnapValue::Gauge(
                            tok.next()
                                .and_then(|t| t.parse().ok())
                                .ok_or_else(|| err(lineno, "bad gauge value".into()))?,
                        ),
                        "histogram" => {
                            let sum = tok
                                .next()
                                .and_then(|t| t.parse().ok())
                                .ok_or_else(|| err(lineno, "bad histogram sum".into()))?;
                            let count = tok
                                .next()
                                .and_then(|t| t.parse().ok())
                                .ok_or_else(|| err(lineno, "bad histogram count".into()))?;
                            let mut buckets = Vec::with_capacity(HIST_BOUNDS.len() + 1);
                            for _ in 0..=HIST_BOUNDS.len() {
                                buckets.push(tok.next().and_then(|t| t.parse().ok()).ok_or_else(
                                    || err(lineno, "truncated histogram buckets".into()),
                                )?);
                            }
                            SnapValue::Histogram {
                                buckets,
                                sum,
                                count,
                            }
                        }
                        other => return Err(err(lineno, format!("unknown sample kind {other:?}"))),
                    };
                    if tok.next().is_some() {
                        return Err(err(lineno, "trailing tokens after sample".into()));
                    }
                    family.samples.push(SnapSample { labels, value });
                }
                Some("end") => {
                    let n: usize = tok
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(lineno, "end lacks a family count".into()))?;
                    if n != snap.families.len() {
                        return Err(err(
                            lineno,
                            format!("end says {n} families, read {}", snap.families.len()),
                        ));
                    }
                    ended = true;
                }
                _ => return Err(err(lineno, format!("unknown line {line:?}"))),
            }
        }
        if !ended {
            return Err(err(0, "truncated snapshot (no end line)".into()));
        }
        Ok(snap)
    }
}

impl MetricsRegistry {
    /// Captures a point-in-time [`MetricsSnapshot`] of every family and
    /// sample. Relaxed reads — a snapshot taken while writers are
    /// active is per-cell consistent, which is all fleet aggregation
    /// needs.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            families: inner
                .families
                .iter()
                .map(|family| SnapFamily {
                    name: family.name.clone(),
                    help: family.help.clone(),
                    samples: family
                        .samples
                        .iter()
                        .map(|sample| SnapSample {
                            labels: sample.labels.clone(),
                            value: match &sample.cell {
                                Cell::Counter(h) => SnapValue::Counter(h.get()),
                                Cell::Gauge(h) => SnapValue::Gauge(h.get()),
                                Cell::Histogram(h) => SnapValue::Histogram {
                                    buckets: h
                                        .0
                                        .buckets
                                        .iter()
                                        .map(|b| b.load(Ordering::Relaxed))
                                        .collect(),
                                    sum: h.sum(),
                                    count: h.count(),
                                },
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Folds a snapshot into this registry: counters and histograms
    /// accumulate, gauges add (fleet gauges are sums — two workers with
    /// queue depth 3 merge to 6). Families and samples the registry has
    /// not seen are registered on the fly (in the snapshot's order), so
    /// merging heterogeneous worker registries is total.
    ///
    /// # Panics
    ///
    /// Panics if a snapshot sample's kind contradicts an existing
    /// registration — the same loud failure as direct re-registration.
    pub fn merge(&self, snap: &MetricsSnapshot) {
        for family in &snap.families {
            for sample in &family.samples {
                let labels: Vec<(&str, &str)> = sample
                    .labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                match &sample.value {
                    SnapValue::Counter(v) => {
                        self.counter(&family.name, &family.help, &labels).add(*v);
                    }
                    SnapValue::Gauge(v) => {
                        self.gauge(&family.name, &family.help, &labels).add(*v);
                    }
                    SnapValue::Histogram {
                        buckets,
                        sum,
                        count,
                    } => {
                        let h = self.histogram(&family.name, &family.help, &labels);
                        for (i, b) in buckets.iter().take(h.0.buckets.len()).enumerate() {
                            h.0.buckets[i].fetch_add(*b, Ordering::Relaxed);
                        }
                        h.0.sum.fetch_add(*sum, Ordering::Relaxed);
                        h.0.count.fetch_add(*count, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// Renders this registry's own state plus every snapshot in `snaps`
    /// folded together, as one Prometheus exposition — the fleet view a
    /// coordinator exports. Non-destructive: neither this registry nor
    /// the snapshots are modified. Deterministic: this registry's
    /// families first (registration order), then unseen families in
    /// snapshot order.
    pub fn render_merged(&self, snaps: &[MetricsSnapshot]) -> String {
        let merged = MetricsRegistry::new();
        merged.merge(&self.snapshot());
        for snap in snaps {
            merged.merge(snap);
        }
        merged.render_prometheus()
    }
}

/// Running metrics endpoint; shuts down (and joins its thread) on drop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal the accept loop to exit and wait for it.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept() call with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_one(registry: &MetricsRegistry, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(std::time::Duration::from_secs(2)))?;
    // One read is enough for any real scrape request line; we only route on
    // the method and path and ignore headers/bodies.
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf)?;
    let request = String::from_utf8_lossy(&buf[..n]);
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            String::from("method not allowed\n"),
        )
    } else if path == "/metrics" || path == "/" {
        ("200 OK", registry.render_prometheus())
    } else {
        ("404 Not Found", String::from("not found\n"))
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate_through_clones() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("bgr_widgets_total", "Widgets made.", &[]);
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration attaches to the same cell.
        let again = registry.counter("bgr_widgets_total", "Widgets made.", &[]);
        assert_eq!(again.get(), 5);

        let g = registry.gauge("bgr_depth", "Depth.", &[]);
        g.set(7);
        g.sub(2);
        g.add(1);
        assert_eq!(g.get(), 6);
    }

    #[test]
    fn histogram_buckets_are_power_of_two_and_cumulative() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("bgr_lat_us", "Latency.", &[]);
        h.observe(1); // le=1
        h.observe(2); // le=2
        h.observe(3); // le=4
        h.observe(1_000_000); // +Inf
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1_000_006);
        let text = registry.render_prometheus();
        assert!(text.contains("bgr_lat_us_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("bgr_lat_us_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("bgr_lat_us_bucket{le=\"4\"} 3\n"));
        assert!(text.contains("bgr_lat_us_bucket{le=\"524288\"} 3\n"));
        assert!(text.contains("bgr_lat_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("bgr_lat_us_sum 1000006\n"));
        assert!(text.contains("bgr_lat_us_count 4\n"));
    }

    #[test]
    fn golden_exposition_format() {
        let registry = MetricsRegistry::new();
        let jobs = registry.counter(
            "bgr_jobs_total",
            "Jobs by terminal state.",
            &[("state", "completed")],
        );
        registry.counter(
            "bgr_jobs_total",
            "Jobs by terminal state.",
            &[("state", "failed")],
        );
        let depth = registry.gauge("bgr_queue_depth", "Unsettled jobs in the queue.", &[]);
        let lat = registry.histogram("bgr_slice_latency_us", "Slice wall time (µs).", &[]);
        jobs.add(2);
        depth.set(3);
        lat.observe(2);
        lat.observe(600_000);

        let expected = "\
# HELP bgr_jobs_total Jobs by terminal state.
# TYPE bgr_jobs_total counter
bgr_jobs_total{state=\"completed\"} 2
bgr_jobs_total{state=\"failed\"} 0
# HELP bgr_queue_depth Unsettled jobs in the queue.
# TYPE bgr_queue_depth gauge
bgr_queue_depth 3
# HELP bgr_slice_latency_us Slice wall time (µs).
# TYPE bgr_slice_latency_us histogram
bgr_slice_latency_us_bucket{le=\"1\"} 0
bgr_slice_latency_us_bucket{le=\"2\"} 1
bgr_slice_latency_us_bucket{le=\"4\"} 1
bgr_slice_latency_us_bucket{le=\"8\"} 1
bgr_slice_latency_us_bucket{le=\"16\"} 1
bgr_slice_latency_us_bucket{le=\"32\"} 1
bgr_slice_latency_us_bucket{le=\"64\"} 1
bgr_slice_latency_us_bucket{le=\"128\"} 1
bgr_slice_latency_us_bucket{le=\"256\"} 1
bgr_slice_latency_us_bucket{le=\"512\"} 1
bgr_slice_latency_us_bucket{le=\"1024\"} 1
bgr_slice_latency_us_bucket{le=\"2048\"} 1
bgr_slice_latency_us_bucket{le=\"4096\"} 1
bgr_slice_latency_us_bucket{le=\"8192\"} 1
bgr_slice_latency_us_bucket{le=\"16384\"} 1
bgr_slice_latency_us_bucket{le=\"32768\"} 1
bgr_slice_latency_us_bucket{le=\"65536\"} 1
bgr_slice_latency_us_bucket{le=\"131072\"} 1
bgr_slice_latency_us_bucket{le=\"262144\"} 1
bgr_slice_latency_us_bucket{le=\"524288\"} 1
bgr_slice_latency_us_bucket{le=\"+Inf\"} 2
bgr_slice_latency_us_sum 600002
bgr_slice_latency_us_count 2
";
        assert_eq!(registry.render_prometheus(), expected);
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = MetricsRegistry::new();
        registry.counter(
            "bgr_esc_total",
            "Line one\nline two \\ end.",
            &[("job", "a\"b\\c\nd")],
        );
        let text = registry.render_prometheus();
        assert!(text.contains("# HELP bgr_esc_total Line one\\nline two \\\\ end.\n"));
        assert!(text.contains("bgr_esc_total{job=\"a\\\"b\\\\c\\nd\"} 0\n"));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_is_loud() {
        let registry = MetricsRegistry::new();
        registry.counter("bgr_x", "x", &[]);
        registry.gauge("bgr_x", "x", &[]);
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("bgr_conc_total", "c", &[]);
        let h = registry.histogram("bgr_conc_us", "h", &[]);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i % 64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker panicked");
        }
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
    }

    #[test]
    fn http_endpoint_serves_exposition() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("bgr_http_total", "Scraped.", &[]);
        c.add(9);
        let mut server = registry
            .serve_http(("127.0.0.1", 0))
            .expect("bind loopback");
        let addr = server.addr();

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
            .expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(response.contains("bgr_http_total 9\n"));

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /nope HTTP/1.1\r\n\r\n")
            .expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        assert!(
            response.starts_with("HTTP/1.1 404 Not Found\r\n"),
            "{response}"
        );

        server.shutdown();
    }

    #[test]
    fn snapshot_round_trips_through_wire_text() {
        let registry = MetricsRegistry::new();
        registry
            .counter("bgr_w_total", "Widgets, with \"quotes\" and\nnewline.", &[])
            .add(7);
        registry
            .gauge("bgr_depth", "Depth now.", &[("worker", "w one")])
            .set(-3);
        let h = registry.histogram("bgr_lat_us", "Latency.", &[]);
        h.observe(3);
        h.observe(999_999);
        let snap = registry.snapshot();
        let text = snap.to_text();
        let back = MetricsSnapshot::parse(&text).expect("round-trip parses");
        assert_eq!(back, snap);
        // Empty-string tokens survive the escaping.
        let registry2 = MetricsRegistry::new();
        registry2.counter("bgr_e_total", "", &[("k", "")]).inc();
        let snap2 = registry2.snapshot();
        assert_eq!(
            MetricsSnapshot::parse(&snap2.to_text()).expect("empty tokens parse"),
            snap2
        );
    }

    #[test]
    fn snapshot_parse_rejects_damage_structurally() {
        let registry = MetricsRegistry::new();
        registry.counter("bgr_d_total", "d", &[("a", "b")]).add(2);
        registry.histogram("bgr_d_us", "h", &[]).observe(5);
        let text = registry.snapshot().to_text();
        // Truncation at every line boundary (losing `end` must fail).
        let lines: Vec<&str> = text.lines().collect();
        for keep in 0..lines.len() {
            let cut = lines[..keep].join("\n");
            assert!(
                MetricsSnapshot::parse(&cut).is_err(),
                "cut after {keep} lines parsed cleanly"
            );
        }
        for (damaged, what) in [
            (text.replacen("v1", "v2", 1), "version skew"),
            (text.replacen("counter", "conter", 1), "bad kind"),
            (text.replacen("sample 1", "sample 9", 1), "label count lie"),
            (text.replacen("end 2", "end 7", 1), "family count lie"),
            (format!("{text}family x y\n"), "content after end"),
        ] {
            assert_ne!(damaged, text, "{what}: mutation did not apply");
            assert!(
                MetricsSnapshot::parse(&damaged).is_err(),
                "{what} parsed cleanly"
            );
        }
    }

    #[test]
    fn merged_fleet_exposition_is_golden() {
        // Two workers with overlapping families plus a coordinator-only
        // family; the merged exposition sums counters/gauges/histograms
        // and appends unseen families in snapshot order.
        let coord = MetricsRegistry::new();
        coord
            .counter("bgr_slices_total", "Job slices executed", &[])
            .add(1);
        let w1 = MetricsRegistry::new();
        w1.counter("bgr_slices_total", "Job slices executed", &[])
            .add(4);
        w1.gauge("bgr_queue_depth", "Depth", &[]).set(2);
        let h1 = w1.histogram("bgr_slice_latency_us", "Latency", &[]);
        h1.observe(2);
        let w2 = MetricsRegistry::new();
        w2.counter("bgr_slices_total", "Job slices executed", &[])
            .add(5);
        w2.gauge("bgr_queue_depth", "Depth", &[]).set(3);
        let h2 = w2.histogram("bgr_slice_latency_us", "Latency", &[]);
        h2.observe(2);
        h2.observe(600_000);
        w2.counter(
            "bgr_worker_only_total",
            "Only worker 2 has this",
            &[("worker", "w2")],
        )
        .add(8);

        // Ship both worker registries through the wire text, as the
        // coordinator receives them.
        let snaps = [
            MetricsSnapshot::parse(&w1.snapshot().to_text()).expect("w1 wire round-trip"),
            MetricsSnapshot::parse(&w2.snapshot().to_text()).expect("w2 wire round-trip"),
        ];
        let merged = coord.render_merged(&snaps);
        let expected = "\
# HELP bgr_slices_total Job slices executed
# TYPE bgr_slices_total counter
bgr_slices_total 10
# HELP bgr_queue_depth Depth
# TYPE bgr_queue_depth gauge
bgr_queue_depth 5
# HELP bgr_slice_latency_us Latency
# TYPE bgr_slice_latency_us histogram
bgr_slice_latency_us_bucket{le=\"1\"} 0
bgr_slice_latency_us_bucket{le=\"2\"} 2
bgr_slice_latency_us_bucket{le=\"4\"} 2
bgr_slice_latency_us_bucket{le=\"8\"} 2
bgr_slice_latency_us_bucket{le=\"16\"} 2
bgr_slice_latency_us_bucket{le=\"32\"} 2
bgr_slice_latency_us_bucket{le=\"64\"} 2
bgr_slice_latency_us_bucket{le=\"128\"} 2
bgr_slice_latency_us_bucket{le=\"256\"} 2
bgr_slice_latency_us_bucket{le=\"512\"} 2
bgr_slice_latency_us_bucket{le=\"1024\"} 2
bgr_slice_latency_us_bucket{le=\"2048\"} 2
bgr_slice_latency_us_bucket{le=\"4096\"} 2
bgr_slice_latency_us_bucket{le=\"8192\"} 2
bgr_slice_latency_us_bucket{le=\"16384\"} 2
bgr_slice_latency_us_bucket{le=\"32768\"} 2
bgr_slice_latency_us_bucket{le=\"65536\"} 2
bgr_slice_latency_us_bucket{le=\"131072\"} 2
bgr_slice_latency_us_bucket{le=\"262144\"} 2
bgr_slice_latency_us_bucket{le=\"524288\"} 2
bgr_slice_latency_us_bucket{le=\"+Inf\"} 3
bgr_slice_latency_us_sum 600004
bgr_slice_latency_us_count 3
# HELP bgr_worker_only_total Only worker 2 has this
# TYPE bgr_worker_only_total counter
bgr_worker_only_total{worker=\"w2\"} 8
";
        assert_eq!(merged, expected);
        // render_merged is non-destructive: the coordinator registry
        // still reads its own values.
        assert_eq!(
            coord
                .counter("bgr_slices_total", "Job slices executed", &[])
                .get(),
            1
        );
        // merge() itself accumulates when called repeatedly.
        let fold = MetricsRegistry::new();
        fold.merge(&snaps[0]);
        fold.merge(&snaps[0]);
        assert_eq!(
            fold.counter("bgr_slices_total", "Job slices executed", &[])
                .get(),
            8
        );
    }

    #[test]
    fn file_sink_round_trips() {
        let registry = MetricsRegistry::new();
        registry.gauge("bgr_file_gauge", "g", &[]).set(-4);
        let dir = std::env::temp_dir().join("bgr_metrics_test");
        let path = dir.join("metrics.prom");
        registry.write_to_file(&path).expect("write metrics file");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text, registry.render_prometheus());
        assert!(text.contains("bgr_file_gauge -4\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
