//! Channel intervals: merged per-net trunk spans.

use bgr_netlist::NetId;

/// A maximal horizontal interval one net occupies in a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Owning net.
    pub net: NetId,
    /// Left end (pitches, inclusive).
    pub x1: i32,
    /// Right end (pitches, inclusive).
    pub x2: i32,
    /// Vertical extent in tracks (the net's wire width in pitches).
    pub width: u32,
}

/// Merges a net's trunk spans within one channel into maximal intervals.
///
/// Spans produced by the global router are unit hops between consecutive
/// tap columns; touching or overlapping spans fuse into one interval.
pub fn merge_net_spans(net: NetId, width: u32, spans: &[(i32, i32)]) -> Vec<Interval> {
    let mut spans: Vec<(i32, i32)> = spans.to_vec();
    spans.sort_unstable();
    let mut out: Vec<Interval> = Vec::new();
    for (x1, x2) in spans {
        match out.last_mut() {
            Some(last) if x1 <= last.x2 => {
                last.x2 = last.x2.max(x2);
            }
            _ => out.push(Interval { net, x1, x2, width }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_touching_spans() {
        let net = NetId::new(0);
        let merged = merge_net_spans(net, 1, &[(5, 8), (0, 2), (2, 5)]);
        assert_eq!(
            merged,
            vec![Interval {
                net,
                x1: 0,
                x2: 8,
                width: 1
            }]
        );
    }

    #[test]
    fn keeps_disjoint_spans_separate() {
        let net = NetId::new(1);
        let merged = merge_net_spans(net, 2, &[(0, 2), (5, 7)]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].x2, 2);
        assert_eq!(merged[1].x1, 5);
        assert!(merged.iter().all(|i| i.width == 2));
    }

    #[test]
    fn empty_input_yields_empty() {
        assert!(merge_net_spans(NetId::new(0), 1, &[]).is_empty());
    }

    #[test]
    fn zero_length_span_survives() {
        let merged = merge_net_spans(NetId::new(0), 1, &[(3, 3)]);
        assert_eq!(merged.len(), 1);
        assert_eq!((merged[0].x1, merged[0].x2), (3, 3));
    }
}
