//! Detailed-routing substrate: a left-edge channel router.
//!
//! The paper measures final results "from routing lengths after channel
//! routing in the same delay model" (§5). This crate assigns every
//! global-routing trunk to a channel track with the classic left-edge
//! algorithm (greedy first-fit over intervals sorted by left endpoint,
//! which achieves the channel's density lower bound for interval
//! packing), then derives
//!
//! * per-channel **track counts** → channel heights → the chip **area**
//!   of Table 2,
//! * exact per-net **routed lengths** (trunks + vertical pin taps + row
//!   crossings) → total length and the final **critical-path delays**.
//!
//! Vertical constraint graphs and doglegs are out of scope (the paper
//! used NTT's production channel router); a preference pass orders
//! single-pitch tracks so top-tapping nets sit near the channel top,
//! which shortens vertical segments the way a constraint-aware router
//! would.
//!
//! # Example
//!
//! ```
//! use bgr_channel::route_channels;
//! use bgr_core::{GlobalRouter, RouterConfig};
//! use bgr_layout::{Geometry, PlacementBuilder};
//! use bgr_netlist::{CellLibrary, CircuitBuilder};
//!
//! let lib = CellLibrary::ecl();
//! let inv = lib.kind_by_name("INV").unwrap();
//! let mut cb = CircuitBuilder::new(lib);
//! let a = cb.add_input_pad("a");
//! let y = cb.add_output_pad("y");
//! let u = cb.add_cell("u", inv);
//! cb.add_net("n1", cb.pad_term(a), [cb.cell_term(u, "A")?])?;
//! cb.add_net("n2", cb.cell_term(u, "Y")?, [cb.pad_term(y)])?;
//! let circuit = cb.finish()?;
//! let mut pb = PlacementBuilder::new(Geometry::default(), 1);
//! pb.append_with_width(0, bgr_netlist::CellId::new(0), 3);
//! pb.place_pad_bottom(a, 0);
//! pb.place_pad_top(y, 2);
//! let placement = pb.finish(&circuit)?;
//! let routed = GlobalRouter::new(RouterConfig::default()).route(circuit, placement, vec![])?;
//! let detail = route_channels(
//!     &routed.circuit,
//!     &routed.placement,
//!     &routed.result,
//!     &[],
//!     bgr_timing::DelayModel::Capacitance,
//!     bgr_timing::WireParams::default(),
//! )?;
//! assert!(detail.area_mm2 > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod detail;
pub mod interval;
pub mod leftedge;
pub mod vcg;

pub use detail::{route_channels, route_channels_with, DetailedRoute, TrackOrdering};
pub use interval::{merge_net_spans, Interval};
pub use leftedge::{assign_tracks, ChannelLayout, TrackedInterval};
pub use vcg::{assign_tracks_vcg, build_constraints, VcgLayout, VerticalConstraint};
