//! Vertical-constraint-aware track assignment.
//!
//! At a column where net *A* enters the channel from the top and net *B*
//! from the bottom, A's trunk must lie on a higher track than B's or
//! their vertical segments would overlap. These requirements form the
//! *vertical constraint graph* (VCG); the classic constrained left-edge
//! algorithm fills tracks bottom-up, admitting an interval only when
//! every net that must lie below it is already placed.
//!
//! Doglegs (splitting a net to break VCG cycles) are not implemented;
//! intervals stuck in a cycle are placed by the plain left-edge rule and
//! counted in [`VcgLayout::violations`].

use std::collections::HashMap;

use bgr_netlist::NetId;

use crate::interval::Interval;
use crate::leftedge::{ChannelLayout, TrackedInterval};

/// One vertical constraint: `above` must be on a strictly higher track
/// than `below` (they share a column with opposite-side taps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerticalConstraint {
    /// Net tapped from the channel top at the shared column.
    pub above: NetId,
    /// Net tapped from the channel bottom at the shared column.
    pub below: NetId,
}

/// Builds the VCG from per-column taps: `(net, x, from_top)`.
///
/// A constraint `above > below` arises at every column carrying both a
/// top tap of one net and a bottom tap of another.
pub fn build_constraints(taps: &[(NetId, i32, bool)]) -> Vec<VerticalConstraint> {
    let mut by_col: HashMap<i32, (Vec<NetId>, Vec<NetId>)> = HashMap::new();
    for &(net, x, from_top) in taps {
        let entry = by_col.entry(x).or_default();
        if from_top {
            entry.0.push(net);
        } else {
            entry.1.push(net);
        }
    }
    let mut out = Vec::new();
    for (_, (tops, bottoms)) in by_col {
        for &a in &tops {
            for &b in &bottoms {
                if a != b {
                    let c = VerticalConstraint { above: a, below: b };
                    if !out.contains(&c) {
                        out.push(c);
                    }
                }
            }
        }
    }
    out.sort_by_key(|c| (c.above, c.below));
    out
}

/// Result of VCG-constrained assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct VcgLayout {
    /// The track layout.
    pub layout: ChannelLayout,
    /// Constraints that could not be honored (cycles / width conflicts).
    pub violations: usize,
}

/// Constrained left-edge: fills tracks bottom-up; an interval is
/// admissible on the current track only if no *unplaced* interval's net
/// must lie below it. Cycle leftovers fall back to plain first-fit and
/// are counted as violations.
pub fn assign_tracks_vcg(intervals: &[Interval], constraints: &[VerticalConstraint]) -> VcgLayout {
    let n = intervals.len();
    let mut placed = vec![false; n];
    let mut track_of: Vec<usize> = vec![0; n];
    // For interval i: the set of interval indices whose nets must be
    // BELOW i's net (i can only be placed once they are all placed).
    let below_of = |i: usize| -> Vec<usize> {
        let net = intervals[i].net;
        constraints
            .iter()
            .filter(|c| c.above == net)
            .flat_map(|c| {
                intervals
                    .iter()
                    .enumerate()
                    .filter(move |(_, iv)| iv.net == c.below)
                    .map(|(j, _)| j)
            })
            .collect()
    };
    let mut track = 0usize;
    let mut remaining = n;
    while remaining > 0 {
        // Candidates for this track: unplaced, all "below" intervals
        // already placed on strictly lower tracks.
        let mut order: Vec<usize> = (0..n)
            .filter(|&i| !placed[i] && intervals[i].width == 1)
            .filter(|&i| {
                below_of(i)
                    .iter()
                    .all(|&j| placed[j] && track_of[j] < track)
            })
            .collect();
        order.sort_by_key(|&i| (intervals[i].x1, intervals[i].net, i));
        let mut last_end = i32::MIN;
        let mut progress = false;
        for i in order {
            if last_end < intervals[i].x1 {
                placed[i] = true;
                track_of[i] = track;
                last_end = intervals[i].x2;
                remaining -= 1;
                progress = true;
            }
        }
        if !progress {
            // Cycle or wide intervals: fall back to first-fit for the
            // rest, counting unhonored constraints afterwards.
            break;
        }
        track += 1;
    }
    let mut layout = ChannelLayout {
        tracks: track,
        assignments: (0..n)
            .filter(|&i| placed[i])
            .map(|i| TrackedInterval {
                interval: intervals[i],
                track: track_of[i],
            })
            .collect(),
    };
    if remaining > 0 {
        // Place leftovers (wide intervals, cycle members) with first-fit
        // above/between whatever exists.
        let mut last_end: Vec<i32> = vec![i32::MIN; layout.tracks];
        for t in &layout.assignments {
            for k in t.track..t.track + t.interval.width as usize {
                if k < last_end.len() {
                    last_end[k] = last_end[k].max(t.interval.x2);
                }
            }
        }
        let mut order: Vec<usize> = (0..n).filter(|&i| !placed[i]).collect();
        order.sort_by_key(|&i| (intervals[i].x1, -(intervals[i].x2 - intervals[i].x1)));
        for i in order {
            let w = intervals[i].width as usize;
            let mut t = 0usize;
            loop {
                while last_end.len() < t + w {
                    last_end.push(i32::MIN);
                }
                // Track-by-track horizontal check only (VCG already
                // unsatisfiable for these).
                if (t..t + w).all(|k| last_end[k] < intervals[i].x1) {
                    break;
                }
                t += 1;
            }
            for slot in last_end.iter_mut().skip(t).take(w) {
                *slot = intervals[i].x2;
            }
            placed[i] = true;
            track_of[i] = t;
            layout.assignments.push(TrackedInterval {
                interval: intervals[i],
                track: t,
            });
        }
        layout.tracks = last_end
            .iter()
            .rposition(|&e| e != i32::MIN)
            .map(|p| p + 1)
            .unwrap_or(layout.tracks);
    }
    // Count violated constraints in the final layout.
    let mut violations = 0;
    for c in constraints {
        let ta = layout
            .assignments
            .iter()
            .filter(|t| t.interval.net == c.above)
            .map(|t| t.track)
            .min();
        let tb = layout
            .assignments
            .iter()
            .filter(|t| t.interval.net == c.below)
            .map(|t| t.track)
            .max();
        if let (Some(ta), Some(tb)) = (ta, tb) {
            if ta <= tb {
                violations += 1;
            }
        }
    }
    VcgLayout { layout, violations }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(net: usize, x1: i32, x2: i32) -> Interval {
        Interval {
            net: NetId::new(net),
            x1,
            x2,
            width: 1,
        }
    }

    #[test]
    fn constraints_from_shared_columns() {
        let taps = vec![
            (NetId::new(0), 5, true),
            (NetId::new(1), 5, false),
            (NetId::new(2), 9, true),
        ];
        let cons = build_constraints(&taps);
        assert_eq!(
            cons,
            vec![VerticalConstraint {
                above: NetId::new(0),
                below: NetId::new(1)
            }]
        );
    }

    #[test]
    fn vcg_orders_tracks() {
        // Nets 0 and 1 overlap horizontally AND net 0 must be above 1.
        let intervals = vec![iv(0, 0, 6), iv(1, 3, 9)];
        let cons = vec![VerticalConstraint {
            above: NetId::new(0),
            below: NetId::new(1),
        }];
        let out = assign_tracks_vcg(&intervals, &cons);
        assert_eq!(out.violations, 0);
        let t0 = out.layout.track_at(NetId::new(0), 4).unwrap();
        let t1 = out.layout.track_at(NetId::new(1), 4).unwrap();
        assert!(t0 > t1, "net 0 above net 1: {t0} vs {t1}");
    }

    #[test]
    fn vcg_can_cost_extra_tracks() {
        // Without constraints, these disjoint intervals share one track;
        // the constraint forces two.
        let intervals = vec![iv(0, 0, 3), iv(1, 5, 9)];
        let cons = vec![VerticalConstraint {
            above: NetId::new(0),
            below: NetId::new(1),
        }];
        let out = assign_tracks_vcg(&intervals, &cons);
        assert_eq!(out.violations, 0);
        assert_eq!(out.layout.tracks, 2);
    }

    #[test]
    fn cycles_fall_back_with_violation_count() {
        // 0 above 1 and 1 above 0: unsatisfiable without doglegs.
        let intervals = vec![iv(0, 0, 6), iv(1, 3, 9)];
        let cons = vec![
            VerticalConstraint {
                above: NetId::new(0),
                below: NetId::new(1),
            },
            VerticalConstraint {
                above: NetId::new(1),
                below: NetId::new(0),
            },
        ];
        let out = assign_tracks_vcg(&intervals, &cons);
        assert_eq!(out.layout.assignments.len(), 2);
        assert!(out.violations >= 1);
    }

    #[test]
    fn no_constraints_matches_density() {
        let intervals = vec![iv(0, 0, 5), iv(1, 3, 8), iv(2, 6, 9)];
        let out = assign_tracks_vcg(&intervals, &[]);
        assert_eq!(out.violations, 0);
        assert_eq!(out.layout.tracks, 2);
    }
}
