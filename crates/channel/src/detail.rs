//! Detailed routing of all channels and final measurement extraction.

use bgr_core::{RoutingResult, Segment, TimingReport};
use bgr_layout::{ChannelId, PadSide, Placement, TermSite};
use bgr_netlist::{Circuit, NetId};
use bgr_timing::{DelayModel, PathConstraint, TimingError, WireParams};

use crate::interval::merge_net_spans;
use crate::leftedge::{assign_tracks, ChannelLayout};
use crate::vcg::{assign_tracks_vcg, build_constraints};

/// How tracks are ordered within each channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrackOrdering {
    /// Left-edge + tap-side preference permutation (fast default).
    #[default]
    Preference,
    /// Constrained left-edge honoring the vertical constraint graph
    /// (classic; may use extra tracks, counts unsatisfiable constraints).
    Vcg,
}

/// A channel-routed chip with the paper's Table 2 measurements.
#[derive(Debug, Clone)]
pub struct DetailedRoute {
    /// Per-channel track layouts.
    pub channels: Vec<ChannelLayout>,
    /// Per-channel track counts.
    pub tracks: Vec<usize>,
    /// Vertical constraints that could not be honored (always 0 in
    /// [`TrackOrdering::Preference`] mode, which does not check them).
    pub vcg_violations: usize,
    /// Exact per-net routed lengths in µm.
    pub net_lengths_um: Vec<f64>,
    /// Total routed length in µm.
    pub total_length_um: f64,
    /// Chip core area in mm².
    pub area_mm2: f64,
    /// Final timing vs the given constraints, at routed lengths.
    pub timing: TimingReport,
}

impl DetailedRoute {
    /// Total routed length in mm (Table 2 unit).
    pub fn total_length_mm(&self) -> f64 {
        self.total_length_um / 1000.0
    }
}

/// A vertical tap into a channel: `(channel, net, x, from_top)`.
#[derive(Debug, Clone, Copy)]
struct Tap {
    channel: usize,
    net: NetId,
    x: i32,
    from_top: bool,
}

fn collect_taps(circuit: &Circuit, placement: &Placement, routing: &RoutingResult) -> Vec<Tap> {
    let mut taps = Vec::new();
    for (ni, tree) in routing.trees.iter().enumerate() {
        let net = NetId::new(ni);
        for seg in &tree.segments {
            match *seg {
                Segment::Branch { channel, x, term } => {
                    let pos = placement.term_pos(circuit, term);
                    let from_top = match pos.site {
                        // Channel c runs below row c: a pin in row c enters
                        // from the top of channel c; a pin in row c-1 from
                        // the bottom.
                        TermSite::Cell { row, .. } => row == channel.index(),
                        TermSite::Pad(PadSide::Bottom) => false,
                        TermSite::Pad(PadSide::Top) => true,
                    };
                    taps.push(Tap {
                        channel: channel.index(),
                        net,
                        x,
                        from_top,
                    });
                }
                Segment::Feed { row, x } => {
                    // A feedthrough in row r taps channel r from the top
                    // and channel r+1 from the bottom.
                    taps.push(Tap {
                        channel: row as usize,
                        net,
                        x,
                        from_top: true,
                    });
                    taps.push(Tap {
                        channel: row as usize + 1,
                        net,
                        x,
                        from_top: false,
                    });
                }
                Segment::Trunk { .. } => {}
            }
        }
    }
    taps
}

/// Channel-routes a global-routing result and recomputes area, lengths
/// and timing — "the same delay model" applied after channel routing, as
/// in the paper's §5.
///
/// # Errors
///
/// Propagates constraint-graph construction failures from the timing
/// evaluation.
pub fn route_channels(
    circuit: &Circuit,
    placement: &Placement,
    routing: &RoutingResult,
    constraints: &[PathConstraint],
    model: DelayModel,
    wire: WireParams,
) -> Result<DetailedRoute, TimingError> {
    route_channels_with(
        circuit,
        placement,
        routing,
        constraints,
        model,
        wire,
        TrackOrdering::Preference,
    )
}

/// [`route_channels`] with an explicit track-ordering strategy.
///
/// # Errors
///
/// Propagates constraint-graph construction failures from the timing
/// evaluation.
pub fn route_channels_with(
    circuit: &Circuit,
    placement: &Placement,
    routing: &RoutingResult,
    constraints: &[PathConstraint],
    model: DelayModel,
    wire: WireParams,
    ordering: TrackOrdering,
) -> Result<DetailedRoute, TimingError> {
    let geometry = *placement.geometry();
    let num_channels = placement.num_channels();
    let taps = collect_taps(circuit, placement, routing);

    // Per channel: merged intervals + tap-side preferences.
    let mut channels = Vec::with_capacity(num_channels);
    let mut vcg_violations = 0;
    for c in 0..num_channels {
        let mut intervals = Vec::new();
        for (ni, tree) in routing.trees.iter().enumerate() {
            let net = NetId::new(ni);
            let spans: Vec<(i32, i32)> = tree
                .trunks_in_channel(ChannelId::new(c))
                .into_iter()
                .map(|(x1, x2, _)| (x1, x2))
                .collect();
            intervals.extend(merge_net_spans(net, tree.width_pitches, &spans));
        }
        match ordering {
            TrackOrdering::Preference => {
                let prefs: Vec<f64> = intervals
                    .iter()
                    .map(|iv| {
                        taps.iter()
                            .filter(|t| {
                                t.channel == c && t.net == iv.net && iv.x1 <= t.x && t.x <= iv.x2
                            })
                            .map(|t| if t.from_top { 1.0 } else { -1.0 })
                            .sum()
                    })
                    .collect();
                channels.push(assign_tracks(&intervals, &prefs));
            }
            TrackOrdering::Vcg => {
                let channel_taps: Vec<(NetId, i32, bool)> = taps
                    .iter()
                    .filter(|t| t.channel == c)
                    .map(|t| (t.net, t.x, t.from_top))
                    .collect();
                let cons = build_constraints(&channel_taps);
                let out = assign_tracks_vcg(&intervals, &cons);
                vcg_violations += out.violations;
                channels.push(out.layout);
            }
        }
    }
    let tracks: Vec<usize> = channels.iter().map(|c| c.tracks).collect();

    // Exact lengths: trunks + vertical taps + row crossings.
    let tp = geometry.track_pitch_um;
    let mut net_lengths_um = vec![0.0; routing.trees.len()];
    for (ni, tree) in routing.trees.iter().enumerate() {
        let mut len = 0.0;
        for seg in &tree.segments {
            match *seg {
                Segment::Trunk { x1, x2, .. } => {
                    len += geometry.pitches_to_um((x2 - x1) as f64);
                }
                Segment::Feed { .. } => len += geometry.row_height_um,
                Segment::Branch { .. } => {}
            }
        }
        net_lengths_um[ni] = len;
    }
    for tap in &taps {
        let layout = &channels[tap.channel];
        let t = layout.track_at(tap.net, tap.x);
        let height = layout.tracks as f64 * tp;
        let v = match t {
            Some(t) => {
                let y = (t as f64 + 0.5) * tp;
                if tap.from_top {
                    height - y
                } else {
                    y
                }
            }
            // A tap without a covering interval (point connection):
            // half the channel height as a neutral estimate.
            None => height / 2.0,
        };
        net_lengths_um[tap.net.index()] += v;
    }
    let total_length_um = net_lengths_um.iter().sum();

    let area_mm2 = placement.area_mm2(&tracks);
    let timing = TimingReport::evaluate(circuit, constraints, model, wire, &net_lengths_um)?;
    Ok(DetailedRoute {
        channels,
        tracks,
        vcg_violations,
        net_lengths_um,
        total_length_um,
        area_mm2,
        timing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_core::{GlobalRouter, RouterConfig};
    use bgr_layout::{Geometry, PlacementBuilder};
    use bgr_netlist::{CellId, CellLibrary, CircuitBuilder};

    fn routed_chain() -> (Circuit, Placement, RoutingResult, Vec<PathConstraint>) {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let y = cb.add_output_pad("y");
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", inv);
        cb.add_net("n0", cb.pad_term(a), [cb.cell_term(u1, "A").unwrap()])
            .unwrap();
        cb.add_net(
            "n1",
            cb.cell_term(u1, "Y").unwrap(),
            [cb.cell_term(u2, "A").unwrap()],
        )
        .unwrap();
        cb.add_net("n2", cb.cell_term(u2, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        let cons = vec![PathConstraint::new(
            "p",
            cb.pad_term(a),
            cb.pad_term(y),
            1000.0,
        )];
        let circuit = cb.finish().unwrap();
        let mut pb = PlacementBuilder::new(Geometry::default(), 1);
        pb.append_with_width(0, CellId::new(0), 3);
        pb.append_with_width(0, CellId::new(1), 3);
        pb.place_pad_bottom(a, 0);
        pb.place_pad_top(y, 5);
        let placement = pb.finish(&circuit).unwrap();
        let routed = GlobalRouter::new(RouterConfig::default())
            .route(circuit, placement, cons.clone())
            .unwrap();
        (routed.circuit, routed.placement, routed.result, cons)
    }

    #[test]
    fn detail_route_produces_positive_measurements() {
        let (circuit, placement, result, cons) = routed_chain();
        let detail = route_channels(
            &circuit,
            &placement,
            &result,
            &cons,
            DelayModel::Capacitance,
            WireParams::default(),
        )
        .unwrap();
        assert_eq!(detail.tracks.len(), placement.num_channels());
        assert!(detail.area_mm2 > 0.0);
        assert!(detail.total_length_um > 0.0);
        assert_eq!(detail.timing.constraints.len(), 1);
        assert!(detail.timing.max_arrival_ps() > 132.5);
    }

    #[test]
    fn track_counts_cover_global_density() {
        let (circuit, placement, result, cons) = routed_chain();
        let detail = route_channels(
            &circuit,
            &placement,
            &result,
            &cons,
            DelayModel::Capacitance,
            WireParams::default(),
        )
        .unwrap();
        for (c, &t) in detail.tracks.iter().enumerate() {
            assert!(
                t as i32 >= result.channel_tracks[c],
                "left-edge must realize at least the density in channel {c}"
            );
        }
    }

    #[test]
    fn detailed_lengths_exceed_trunk_only() {
        let (circuit, placement, result, cons) = routed_chain();
        let detail = route_channels(
            &circuit,
            &placement,
            &result,
            &cons,
            DelayModel::Capacitance,
            WireParams::default(),
        )
        .unwrap();
        // Vertical taps add real length beyond the global trunk estimate's
        // nominal branch charge only when tracks exist; at minimum the
        // totals are positive and consistent.
        let sum: f64 = detail.net_lengths_um.iter().sum();
        assert!((sum - detail.total_length_um).abs() < 1e-9);
    }

    use bgr_layout::Placement;
    use bgr_netlist::Circuit;
}
