//! Left-edge track assignment.

use crate::interval::Interval;

/// An interval with its assigned track (track 0 = channel bottom; an
/// interval of width `w` occupies tracks `track .. track + w`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackedInterval {
    /// The interval.
    pub interval: Interval,
    /// Bottom-most occupied track.
    pub track: usize,
}

/// The routed layout of one channel.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChannelLayout {
    /// Number of tracks used.
    pub tracks: usize,
    /// Interval placements.
    pub assignments: Vec<TrackedInterval>,
}

impl ChannelLayout {
    /// The track of the interval of `net` covering column `x`, if any.
    pub fn track_at(&self, net: bgr_netlist::NetId, x: i32) -> Option<usize> {
        self.assignments
            .iter()
            .find(|t| t.interval.net == net && t.interval.x1 <= x && x <= t.interval.x2)
            .map(|t| t.track)
    }
}

/// Assigns intervals to tracks with the greedy left-edge algorithm:
/// process intervals by ascending left end (longer first on ties) and
/// place each on the lowest run of `width` adjacent tracks that is free
/// past the previous occupant.
///
/// `prefs` optionally biases a post-pass reordering: per interval, a
/// positive value means the net taps mostly from the channel top. When
/// every interval is single-width, whole tracks are permuted so
/// top-preferring tracks end up near the top, shortening vertical
/// segments. Widths > 1 disable the permutation (adjacency must hold).
pub fn assign_tracks(intervals: &[Interval], prefs: &[f64]) -> ChannelLayout {
    assert!(prefs.is_empty() || prefs.len() == intervals.len());
    let mut order: Vec<usize> = (0..intervals.len()).collect();
    order.sort_by_key(|&i| {
        let iv = &intervals[i];
        (iv.x1, -(iv.x2 - iv.x1), iv.net)
    });
    // last_end[t]: right end of the last interval on track t.
    let mut last_end: Vec<i32> = Vec::new();
    let mut assignments = Vec::with_capacity(intervals.len());
    for i in order {
        let iv = intervals[i];
        let w = iv.width as usize;
        let mut placed = None;
        let mut t = 0usize;
        while placed.is_none() {
            while last_end.len() < t + w {
                last_end.push(i32::MIN);
            }
            if (t..t + w).all(|k| last_end[k] < iv.x1) {
                placed = Some(t);
            } else {
                t += 1;
            }
        }
        let t = placed.expect("always placeable");
        for slot in last_end.iter_mut().skip(t).take(w) {
            *slot = iv.x2;
        }
        assignments.push(TrackedInterval {
            interval: iv,
            track: t,
        });
    }
    let tracks = last_end
        .iter()
        .rposition(|&e| e != i32::MIN)
        .map(|p| p + 1)
        .unwrap_or(0);
    let mut layout = ChannelLayout {
        tracks,
        assignments,
    };
    if !prefs.is_empty() && intervals.iter().all(|iv| iv.width == 1) && tracks > 1 {
        reorder_by_preference(&mut layout, intervals, prefs);
    }
    layout
}

/// Permutes whole tracks so that tracks whose intervals prefer the top
/// (positive mean preference) move upward.
fn reorder_by_preference(layout: &mut ChannelLayout, intervals: &[Interval], prefs: &[f64]) {
    let mut score = vec![(0.0f64, 0usize); layout.tracks];
    for t in &layout.assignments {
        // Identify the interval index to fetch its preference.
        if let Some(idx) = intervals.iter().position(|iv| iv == &t.interval) {
            score[t.track].0 += prefs[idx];
            score[t.track].1 += 1;
        }
    }
    let mut by_score: Vec<usize> = (0..layout.tracks).collect();
    by_score.sort_by(|&a, &b| {
        let sa = if score[a].1 > 0 {
            score[a].0 / score[a].1 as f64
        } else {
            0.0
        };
        let sb = if score[b].1 > 0 {
            score[b].0 / score[b].1 as f64
        } else {
            0.0
        };
        sa.total_cmp(&sb).then(a.cmp(&b))
    });
    // by_score[k] = old track that should live at new position k
    // (ascending score bottom-up).
    let mut new_pos = vec![0usize; layout.tracks];
    for (k, &old) in by_score.iter().enumerate() {
        new_pos[old] = k;
    }
    for t in &mut layout.assignments {
        t.track = new_pos[t.track];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_netlist::NetId;

    fn iv(net: usize, x1: i32, x2: i32) -> Interval {
        Interval {
            net: NetId::new(net),
            x1,
            x2,
            width: 1,
        }
    }

    #[test]
    fn disjoint_intervals_share_a_track() {
        let layout = assign_tracks(&[iv(0, 0, 3), iv(1, 5, 8)], &[]);
        assert_eq!(layout.tracks, 1);
        assert_eq!(layout.assignments[0].track, 0);
        assert_eq!(layout.assignments[1].track, 0);
    }

    #[test]
    fn overlap_needs_two_tracks() {
        let layout = assign_tracks(&[iv(0, 0, 5), iv(1, 3, 8)], &[]);
        assert_eq!(layout.tracks, 2);
    }

    #[test]
    fn track_count_equals_density() {
        // Density at column 4 is 3; left-edge achieves exactly 3.
        let layout = assign_tracks(&[iv(0, 0, 5), iv(1, 3, 8), iv(2, 4, 4), iv(3, 6, 9)], &[]);
        assert_eq!(layout.tracks, 3);
    }

    #[test]
    fn touching_endpoints_conflict() {
        // [0,4] and [4,8] share column 4: two tracks.
        let layout = assign_tracks(&[iv(0, 0, 4), iv(1, 4, 8)], &[]);
        assert_eq!(layout.tracks, 2);
    }

    #[test]
    fn wide_interval_occupies_adjacent_tracks() {
        let wide = Interval {
            net: NetId::new(0),
            x1: 0,
            x2: 9,
            width: 2,
        };
        let layout = assign_tracks(&[wide, iv(1, 2, 5)], &[]);
        assert_eq!(layout.tracks, 3);
        let wide_t = layout
            .assignments
            .iter()
            .find(|t| t.interval.width == 2)
            .unwrap();
        assert_eq!(wide_t.track, 0);
    }

    #[test]
    fn preference_moves_top_tappers_up() {
        let a = iv(0, 0, 5); // prefers bottom
        let b = iv(1, 3, 8); // prefers top
        let layout = assign_tracks(&[a, b], &[-1.0, 1.0]);
        let ta = layout.track_at(NetId::new(0), 4).unwrap();
        let tb = layout.track_at(NetId::new(1), 4).unwrap();
        assert!(tb > ta);
    }

    #[test]
    fn track_at_finds_covering_interval() {
        let layout = assign_tracks(&[iv(0, 0, 3), iv(0, 6, 9)], &[]);
        assert!(layout.track_at(NetId::new(0), 2).is_some());
        assert!(layout.track_at(NetId::new(0), 5).is_none());
        assert!(layout.track_at(NetId::new(1), 2).is_none());
    }

    #[test]
    fn empty_channel() {
        let layout = assign_tracks(&[], &[]);
        assert_eq!(layout.tracks, 0);
        assert!(layout.assignments.is_empty());
    }
}
