//! Randomized tests for the left-edge channel router: no horizontal
//! overlap within a track, wide intervals stay on adjacent tracks, and
//! for unit widths the greedy assignment achieves the channel density
//! (the optimum for interval packing).

use bgr_channel::{assign_tracks, Interval};
use bgr_netlist::{NetId, SplitMix64};

fn random_intervals(rng: &mut SplitMix64, max_width: u32) -> Vec<Interval> {
    let n = rng.range_usize(1, 30);
    (0..n)
        .map(|i| {
            let x1 = rng.range_i32(0, 40);
            let len = rng.range_i32(0, 10);
            Interval {
                net: NetId::new(i),
                x1,
                x2: x1 + len,
                width: rng.range_i32(1, max_width as i32 + 1) as u32,
            }
        })
        .collect()
}

#[test]
fn no_overlap_and_adjacency_hold() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(0x1EF7 ^ (seed << 4));
        let intervals = random_intervals(&mut rng, 2);
        let layout = assign_tracks(&intervals, &[]);
        assert_eq!(layout.assignments.len(), intervals.len());
        // Expand each assignment to its occupied tracks and check
        // pairwise conflicts.
        for (i, a) in layout.assignments.iter().enumerate() {
            assert!(a.track + a.interval.width as usize <= layout.tracks);
            for b in layout.assignments.iter().skip(i + 1) {
                let tracks_overlap = a.track < b.track + b.interval.width as usize
                    && b.track < a.track + a.interval.width as usize;
                let x_overlap = a.interval.x1 <= b.interval.x2 && b.interval.x1 <= a.interval.x2;
                assert!(!(tracks_overlap && x_overlap), "{a:?} and {b:?} collide");
            }
        }
    }
}

#[test]
fn unit_width_achieves_density() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(0xDE45 ^ (seed << 4));
        let intervals = random_intervals(&mut rng, 1);
        let layout = assign_tracks(&intervals, &[]);
        // Closed-interval density at any column.
        let density = (0..=50)
            .map(|x| {
                intervals
                    .iter()
                    .filter(|iv| iv.x1 <= x && x <= iv.x2)
                    .count()
            })
            .max()
            .unwrap_or(0);
        assert_eq!(layout.tracks, density);
    }
}
