//! Property tests for the left-edge channel router: no horizontal
//! overlap within a track, wide intervals stay on adjacent tracks, and
//! for unit widths the greedy assignment achieves the channel density
//! (the optimum for interval packing).

use bgr_channel::{assign_tracks, Interval};
use bgr_netlist::NetId;
use proptest::prelude::*;

fn arb_intervals() -> impl Strategy<Value = Vec<Interval>> {
    proptest::collection::vec((0i32..40, 0i32..10, 1u32..3), 1..30).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (x1, len, width))| Interval {
                net: NetId::new(i),
                x1,
                x2: x1 + len,
                width,
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn no_overlap_and_adjacency_hold(intervals in arb_intervals()) {
        let layout = assign_tracks(&intervals, &[]);
        prop_assert_eq!(layout.assignments.len(), intervals.len());
        // Expand each assignment to its occupied tracks and check
        // pairwise conflicts.
        for (i, a) in layout.assignments.iter().enumerate() {
            prop_assert!(a.track + a.interval.width as usize <= layout.tracks);
            for b in layout.assignments.iter().skip(i + 1) {
                let tracks_overlap = a.track < b.track + b.interval.width as usize
                    && b.track < a.track + a.interval.width as usize;
                let x_overlap =
                    a.interval.x1 <= b.interval.x2 && b.interval.x1 <= a.interval.x2;
                prop_assert!(
                    !(tracks_overlap && x_overlap),
                    "{:?} and {:?} collide",
                    a,
                    b
                );
            }
        }
    }

    #[test]
    fn unit_width_achieves_density(raw in proptest::collection::vec((0i32..40, 0i32..10), 1..30)) {
        let intervals: Vec<Interval> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (x1, len))| Interval {
                net: NetId::new(i),
                x1,
                x2: x1 + len,
                width: 1,
            })
            .collect();
        let layout = assign_tracks(&intervals, &[]);
        // Closed-interval density at any column.
        let density = (0..=50)
            .map(|x| {
                intervals
                    .iter()
                    .filter(|iv| iv.x1 <= x && x <= iv.x2)
                    .count()
            })
            .max()
            .unwrap_or(0);
        prop_assert_eq!(layout.tracks, density);
    }
}
